"""Peano-curve behaviour: base pattern, continuity, self-similarity."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import PeanoCurve, continuity_profile


class TestBasePattern:
    def test_3x3_serpentine(self):
        grid = PeanoCurve(3).position_grid()
        np.testing.assert_array_equal(
            grid, [[0, 1, 2], [5, 4, 3], [6, 7, 8]]
        )

    def test_order(self):
        assert PeanoCurve(27).order == 3


class TestContinuity:
    @pytest.mark.parametrize("side", [3, 9, 27, 81])
    def test_every_step_is_unit(self, side):
        assert np.all(continuity_profile(PeanoCurve(side)) == 1)

    def test_endpoints(self):
        c = PeanoCurve(9)
        ys, xs = c.traversal()
        assert (ys[0], xs[0]) == (0, 0)
        # The Peano curve ends at the opposite corner.
        assert (ys[-1], xs[-1]) == (c.side - 1, c.side - 1)


class TestSelfSimilarity:
    @pytest.mark.parametrize("side", [9, 27])
    def test_ninths_stay_in_cells(self, side):
        c = PeanoCurve(side)
        ys, xs = c.traversal()
        ninth = c.npoints // 9
        cell = side // 3
        for i in range(9):
            seg_y = ys[i * ninth : (i + 1) * ninth] // cell
            seg_x = xs[i * ninth : (i + 1) * ninth] // cell
            assert seg_y.min() == seg_y.max()
            assert seg_x.min() == seg_x.max()

    def test_cells_visited_in_serpentine_order(self):
        c = PeanoCurve(9)
        ys, xs = c.traversal()
        ninth = c.npoints // 9
        cells = [
            (int(ys[i * ninth]) // 3, int(xs[i * ninth]) // 3) for i in range(9)
        ]
        assert cells == [
            (0, 0), (0, 1), (0, 2),
            (1, 2), (1, 1), (1, 0),
            (2, 0), (2, 1), (2, 2),
        ]


@settings(max_examples=30)
@given(
    order=st.integers(min_value=1, max_value=4),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_random(order, seed):
    side = 3**order
    c = PeanoCurve(side)
    rng = np.random.default_rng(seed)
    y = rng.integers(0, side, 32, dtype=np.uint64)
    x = rng.integers(0, side, 32, dtype=np.uint64)
    yy, xx = c.decode(c.encode(y, x))
    np.testing.assert_array_equal(yy, y)
    np.testing.assert_array_equal(xx, x)
