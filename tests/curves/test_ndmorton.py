"""N-dimensional Morton codes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    MortonCurve,
    max_bits_for_dims,
    morton_encode3,
    nd_morton_decode,
    nd_morton_encode,
)
from repro.errors import CurveDomainError


class TestAgainstDedicatedPaths:
    def test_matches_2d_morton(self):
        side = 64
        c = MortonCurve(side)
        rng = np.random.default_rng(0)
        y = rng.integers(0, side, 100, dtype=np.uint64)
        x = rng.integers(0, side, 100, dtype=np.uint64)
        np.testing.assert_array_equal(
            nd_morton_encode([y, x], bits=6), c.encode(y, x)
        )

    def test_matches_3d_morton(self):
        rng = np.random.default_rng(1)
        z = rng.integers(0, 2**10, 100, dtype=np.uint64)
        y = rng.integers(0, 2**10, 100, dtype=np.uint64)
        x = rng.integers(0, 2**10, 100, dtype=np.uint64)
        np.testing.assert_array_equal(
            nd_morton_encode([z, y, x], bits=10), morton_encode3(z, y, x)
        )


class TestGeneralDims:
    @pytest.mark.parametrize("dims", [1, 2, 3, 4, 5, 6, 8])
    def test_roundtrip(self, dims):
        b = min(max_bits_for_dims(dims), 8)
        rng = np.random.default_rng(dims)
        coords = [
            rng.integers(0, 1 << b, 200, dtype=np.uint64) for _ in range(dims)
        ]
        codes = nd_morton_encode(coords, bits=b)
        back = nd_morton_decode(codes, dims, bits=b)
        for want, got in zip(coords, back):
            np.testing.assert_array_equal(got, want)

    def test_bijection_small(self):
        # 3 dims x 2 bits: all 64 points map to distinct codes 0..63.
        grids = np.meshgrid(*(np.arange(4, dtype=np.uint64),) * 3, indexing="ij")
        codes = nd_morton_encode([g.ravel() for g in grids], bits=2)
        assert sorted(codes.tolist()) == list(range(64))

    def test_dim0_is_major(self):
        # The first coordinate owns the top bit of each group.
        assert nd_morton_encode([1, 0], bits=1) == 2
        assert nd_morton_encode([0, 1], bits=1) == 1

    def test_scalar_interface(self):
        code = nd_morton_encode([3, 5, 7], bits=4)
        assert isinstance(code, int)
        assert nd_morton_decode(code, 3, bits=4) == (3, 5, 7)

    def test_one_dimension_is_identity(self):
        v = np.arange(100, dtype=np.uint64)
        np.testing.assert_array_equal(nd_morton_encode([v], bits=7), v)


class TestValidation:
    def test_max_bits(self):
        assert max_bits_for_dims(2) == 32
        assert max_bits_for_dims(3) == 21
        assert max_bits_for_dims(8) == 8
        with pytest.raises(CurveDomainError):
            max_bits_for_dims(0)

    def test_rejects_overflow(self):
        with pytest.raises(CurveDomainError):
            nd_morton_encode([np.array([16], dtype=np.uint64)], bits=4)

    def test_rejects_too_many_bits(self):
        with pytest.raises(CurveDomainError):
            nd_morton_encode([1, 2, 3], bits=22)

    def test_rejects_empty(self):
        with pytest.raises(CurveDomainError):
            nd_morton_encode([])


@settings(max_examples=30)
@given(
    dims=st.integers(min_value=1, max_value=6),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_roundtrip_property(dims, seed):
    b = min(max_bits_for_dims(dims), 10)
    rng = np.random.default_rng(seed)
    coords = [rng.integers(0, 1 << b, 32, dtype=np.uint64) for _ in range(dims)]
    back = nd_morton_decode(nd_morton_encode(coords, bits=b), dims, bits=b)
    for want, got in zip(coords, back):
        np.testing.assert_array_equal(got, want)
