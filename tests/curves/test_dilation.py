"""Tests for Raman–Wise dilation/contraction and dilated arithmetic."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import dilation as dl
from repro.util.bits import interleave_bits_naive


class TestDilate2Scalar:
    def test_zero(self):
        assert dl.dilate2(0) == 0

    def test_one(self):
        assert dl.dilate2(1) == 1

    def test_all_ones_byte(self):
        assert dl.dilate2(0xFF) == 0x5555

    def test_max_coordinate(self):
        x = (1 << 32) - 1
        assert dl.dilate2(x) == dl.EVEN_MASK_2D

    def test_matches_naive_interleave(self):
        for x in (0, 1, 2, 3, 0xDEADBEEF, 0x12345678):
            assert dl.dilate2(x) == interleave_bits_naive(0, x, 32)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            dl.dilate2(-1)

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            dl.dilate2(1 << 32)

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_roundtrip(self, x):
        assert dl.contract2(dl.dilate2(x)) == x

    @given(st.integers(min_value=0, max_value=2**32 - 1))
    def test_gap_bits_clear(self, x):
        assert dl.dilate2(x) & dl.ODD_MASK_2D == 0

    @given(st.integers(min_value=0, max_value=2**64 - 1))
    def test_contract_ignores_odd_bits(self, v):
        assert dl.contract2(v) == dl.contract2(v & dl.EVEN_MASK_2D)


class TestDilate3Scalar:
    def test_bit_positions(self):
        # Bit i of the input must land at bit 3*i.
        for i in range(21):
            assert dl.dilate3(1 << i) == 1 << (3 * i)

    @given(st.integers(min_value=0, max_value=2**21 - 1))
    def test_roundtrip(self, x):
        assert dl.contract3(dl.dilate3(x)) == x

    def test_rejects_too_wide(self):
        with pytest.raises(ValueError):
            dl.dilate3(1 << 21)


class TestDilateArrays:
    def test_matches_scalar_2d(self):
        rng = np.random.default_rng(42)
        xs = rng.integers(0, 2**32, size=1000, dtype=np.uint64)
        got = dl.dilate2_array(xs)
        want = np.array([dl.dilate2(int(x)) for x in xs], dtype=np.uint64)
        np.testing.assert_array_equal(got, want)

    def test_matches_scalar_3d(self):
        rng = np.random.default_rng(43)
        xs = rng.integers(0, 2**21, size=1000, dtype=np.uint64)
        got = dl.dilate3_array(xs)
        want = np.array([dl.dilate3(int(x)) for x in xs], dtype=np.uint64)
        np.testing.assert_array_equal(got, want)

    def test_roundtrip_2d(self):
        xs = np.arange(4096, dtype=np.uint64)
        np.testing.assert_array_equal(dl.contract2_array(dl.dilate2_array(xs)), xs)

    def test_roundtrip_3d(self):
        xs = np.arange(4096, dtype=np.uint64)
        np.testing.assert_array_equal(dl.contract3_array(dl.dilate3_array(xs)), xs)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            dl.dilate2_array(np.array([2**32], dtype=np.uint64))
        with pytest.raises(ValueError):
            dl.dilate3_array(np.array([2**21], dtype=np.uint64))

    def test_rejects_negative_ints(self):
        with pytest.raises(ValueError):
            dl.dilate2_array(np.array([-1], dtype=np.int64))

    def test_rejects_float(self):
        with pytest.raises(ValueError):
            dl.dilate2_array(np.array([1.5]))

    def test_empty(self):
        assert dl.dilate2_array(np.array([], dtype=np.uint64)).size == 0

    def test_preserves_shape(self):
        xs = np.arange(12, dtype=np.uint64).reshape(3, 4)
        assert dl.dilate2_array(xs).shape == (3, 4)


class TestDilatedArithmetic:
    @given(
        st.integers(min_value=0, max_value=2**31 - 1),
        st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_add_matches_plain_addition(self, a, b):
        da, db = dl.dilate2(a), dl.dilate2(b)
        assert dl.contract2(dl.dilated_add2(da, db)) == a + b

    @given(st.integers(min_value=0, max_value=2**32 - 2))
    def test_increment(self, a):
        assert dl.contract2(dl.dilated_increment2(dl.dilate2(a))) == a + 1

    def test_add_rejects_undilated(self):
        with pytest.raises(ValueError):
            dl.dilated_add2(0b10, 0)

    def test_increment_rejects_undilated(self):
        with pytest.raises(ValueError):
            dl.dilated_increment2(0b10)

    def test_op_count_constant_is_five_shifts_five_masks(self):
        # The paper adopts Raman & Wise's "constant sequence of 5 shifting
        # and 5 masking operations"; the cost model folds the OR into each
        # step, giving 15 scalar ops.
        assert dl.DILATION_OP_COUNT_2D == 15
