"""Inductive constructions must agree with the arithmetic curves (Fig. 2)."""

import numpy as np
import pytest

from repro.curves import (
    HilbertCurve,
    MortonCurve,
    PeanoCurve,
    hilbert_sequence,
    morton_sequence,
    peano_sequence,
    render_traversal_grid,
    render_traversal_path,
)


def as_pairs(curve):
    ys, xs = curve.traversal()
    return list(zip(ys.tolist(), xs.tolist()))


class TestOracleAgreement:
    @pytest.mark.parametrize("order", range(6))
    def test_morton(self, order):
        assert morton_sequence(order) == as_pairs(MortonCurve(1 << order))

    @pytest.mark.parametrize("order", range(6))
    def test_hilbert(self, order):
        assert hilbert_sequence(order) == as_pairs(HilbertCurve(1 << order))

    @pytest.mark.parametrize("order", range(4))
    def test_peano(self, order):
        assert peano_sequence(order) == as_pairs(PeanoCurve(3**order))

    def test_negative_order_rejected(self):
        for fn in (morton_sequence, hilbert_sequence, peano_sequence):
            with pytest.raises(ValueError):
                fn(-1)


class TestRendering:
    def test_grid_render_lists_all_positions(self):
        text = render_traversal_grid(morton_sequence(2))
        cells = text.split()
        assert sorted(int(c) for c in cells) == list(range(16))

    def test_grid_render_shape(self):
        text = render_traversal_grid(hilbert_sequence(2))
        assert len(text.splitlines()) == 4

    def test_path_render_hilbert_has_no_gaps(self):
        # A continuous curve of 4^k points has 4^k - 1 drawn segments.
        text = render_traversal_path(hilbert_sequence(2))
        segments = text.count("-") + text.count("|")
        assert segments == 15

    def test_path_render_morton_has_gaps(self):
        text = render_traversal_path(morton_sequence(2))
        segments = text.count("-") + text.count("|")
        assert segments < 15

    def test_path_render_marks_every_point(self):
        text = render_traversal_path(peano_sequence(1))
        assert text.count("o") == 9
