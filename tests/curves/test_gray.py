"""Gray-coded Z-order curve."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import (
    GrayMortonCurve,
    HilbertCurve,
    MortonCurve,
    continuity_profile,
    get_curve,
    gray_decode,
    gray_encode,
)
from repro.errors import CurveDomainError
from repro.util.bits import is_pow2


class TestGrayCode:
    @given(st.integers(min_value=0, max_value=2**63 - 1))
    def test_roundtrip(self, v):
        assert gray_decode(gray_encode(v)) == v

    @given(st.integers(min_value=0, max_value=2**32 - 2))
    def test_adjacent_codes_differ_in_one_bit(self, v):
        diff = gray_encode(v) ^ gray_encode(v + 1)
        assert diff != 0 and diff & (diff - 1) == 0

    def test_vectorized(self):
        vs = np.arange(4096, dtype=np.uint64)
        np.testing.assert_array_equal(gray_decode(gray_encode(vs)), vs)

    def test_known_values(self):
        assert [gray_encode(v) for v in range(8)] == [0, 1, 3, 2, 6, 7, 5, 4]


class TestGrayMortonCurve:
    @pytest.mark.parametrize("order", range(1, 7))
    def test_bijection_and_roundtrip(self, order):
        side = 1 << order
        c = GrayMortonCurve(side)
        d = np.arange(side * side, dtype=np.uint64)
        y, x = c.decode(d)
        np.testing.assert_array_equal(c.encode(y, x), d)
        assert len(set(zip(y.tolist(), x.tolist()))) == side * side

    def test_steps_are_axis_aligned_powers_of_two(self):
        c = GrayMortonCurve(16)
        ys, xs = c.traversal()
        dy = np.diff(ys.astype(np.int64))
        dx = np.diff(xs.astype(np.int64))
        # Exactly one coordinate moves per step, by a power of two.
        assert np.all((dy == 0) ^ (dx == 0))
        steps = np.abs(dy + dx)
        assert all(is_pow2(int(s)) for s in steps)

    def test_locality_between_morton_and_hilbert(self):
        n = 32
        mo = continuity_profile(MortonCurve(n)).mean()
        go = continuity_profile(GrayMortonCurve(n)).mean()
        ho = continuity_profile(HilbertCurve(n)).mean()
        assert ho < go < mo

    def test_max_jump_half_of_mortons(self):
        n = 32
        mo = continuity_profile(MortonCurve(n)).max()
        go = continuity_profile(GrayMortonCurve(n)).max()
        assert go <= mo // 2

    def test_registered(self):
        assert isinstance(get_curve("go", 8), GrayMortonCurve)

    def test_order_property(self):
        assert GrayMortonCurve(16).order == 4

    def test_rejects_non_pow2(self):
        with pytest.raises(CurveDomainError):
            GrayMortonCurve(10)

    def test_quadrants_contiguous(self):
        # Gray-coded Z-order preserves the quadrant recursion, hence the
        # tiling effect.
        from repro.curves import tile_span

        spans = tile_span(GrayMortonCurve(16), 4)
        assert np.all(spans == 16)


@settings(max_examples=25)
@given(
    order=st.integers(min_value=1, max_value=10),
    seed=st.integers(min_value=0, max_value=2**31 - 1),
)
def test_random_roundtrip(order, seed):
    side = 1 << order
    c = GrayMortonCurve(side)
    rng = np.random.default_rng(seed)
    y = rng.integers(0, side, 16, dtype=np.uint64)
    x = rng.integers(0, side, 16, dtype=np.uint64)
    yy, xx = c.decode(c.encode(y, x))
    np.testing.assert_array_equal(yy, y)
    np.testing.assert_array_equal(xx, x)
