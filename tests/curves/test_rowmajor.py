"""Row-major family: index formulas, block decomposition."""

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.curves import BlockRowMajorCurve, ColumnMajorCurve, RowMajorCurve


class TestRowMajor:
    @given(
        side=st.integers(min_value=1, max_value=128),
        seed=st.integers(min_value=0, max_value=2**31 - 1),
    )
    def test_formula(self, side, seed):
        c = RowMajorCurve(side)
        rng = np.random.default_rng(seed)
        y = int(rng.integers(0, side))
        x = int(rng.integers(0, side))
        assert c.encode(y, x) == y * side + x

    def test_grid_is_arange(self):
        grid = RowMajorCurve(5).position_grid()
        np.testing.assert_array_equal(grid, np.arange(25).reshape(5, 5))


class TestColumnMajor:
    def test_transpose_of_rowmajor(self):
        rm = RowMajorCurve(6).position_grid()
        cm = ColumnMajorCurve(6).position_grid()
        np.testing.assert_array_equal(cm, rm.T)


class TestBlockRowMajor:
    def test_degenerate_tile_1_is_rowmajor(self):
        np.testing.assert_array_equal(
            BlockRowMajorCurve(8, tile=1).position_grid(),
            RowMajorCurve(8).position_grid(),
        )

    def test_degenerate_tile_side_is_rowmajor(self):
        np.testing.assert_array_equal(
            BlockRowMajorCurve(8, tile=8).position_grid(),
            RowMajorCurve(8).position_grid(),
        )

    def test_tiles_contiguous(self):
        c = BlockRowMajorCurve(12, tile=4)
        grid = c.position_grid().astype(int)
        for by in range(0, 12, 4):
            for bx in range(0, 12, 4):
                block = grid[by : by + 4, bx : bx + 4]
                assert block.max() - block.min() + 1 == 16
                # Inside a tile: row-major.
                rel = block - block.min()
                np.testing.assert_array_equal(rel, np.arange(16).reshape(4, 4))

    def test_tile_order_is_rowmajor_over_tiles(self):
        c = BlockRowMajorCurve(8, tile=4)
        grid = c.position_grid().astype(int)
        starts = [
            grid[0:4, 0:4].min(),
            grid[0:4, 4:8].min(),
            grid[4:8, 0:4].min(),
            grid[4:8, 4:8].min(),
        ]
        assert starts == [0, 16, 32, 48]

    def test_equality_accounts_for_tile(self):
        assert BlockRowMajorCurve(8, tile=2) != BlockRowMajorCurve(8, tile=4)
