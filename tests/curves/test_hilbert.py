"""Hilbert-specific behaviour: Table I orientation, continuity, locality."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import HilbertCurve, MortonCurve, continuity_profile


class TestPaperArtifacts:
    def test_table1_base_order(self):
        # Table I (HO): 0 1 / 3 2 with y major.
        grid = HilbertCurve(2).position_grid()
        np.testing.assert_array_equal(grid, [[0, 1], [3, 2]])

    def test_top_level_quadrant_order_matches_table1(self):
        # At every size, the four quadrants are visited in Table I's order:
        # top-left, top-right, bottom-right, bottom-left.
        c = HilbertCurve(8)
        ys, xs = c.traversal()
        q = c.npoints // 4
        half = c.side // 2

        def quadrant(i):
            return (ys[i] >= half, xs[i] >= half)

        assert quadrant(0) == (False, False)
        assert quadrant(q) == (False, True)
        assert quadrant(2 * q) == (True, True)
        assert quadrant(3 * q) == (True, False)


class TestContinuity:
    @pytest.mark.parametrize("order", [1, 2, 3, 4, 5, 6])
    def test_every_step_is_unit(self, order):
        c = HilbertCurve(1 << order)
        assert np.all(continuity_profile(c) == 1)

    def test_morton_is_not_continuous(self):
        # Sanity contrast: Morton jumps at quadrant boundaries.
        assert continuity_profile(MortonCurve(4)).max() > 1

    def test_endpoints(self):
        # The curve starts at the top-left corner and, with Table I's
        # orientation, ends at the bottom-left corner.
        c = HilbertCurve(16)
        ys, xs = c.traversal()
        assert (ys[0], xs[0]) == (0, 0)
        assert (ys[-1], xs[-1]) == (c.side - 1, 0)


class TestSelfSimilarity:
    @pytest.mark.parametrize("order", [2, 3, 4])
    def test_quarters_stay_in_quadrants(self, order):
        c = HilbertCurve(1 << order)
        ys, xs = c.traversal()
        q = c.npoints // 4
        half = c.side // 2
        for i, (ylo, xlo) in enumerate(
            [(False, False), (False, True), (True, True), (True, False)]
        ):
            seg_y = ys[i * q : (i + 1) * q]
            seg_x = xs[i * q : (i + 1) * q]
            assert np.all((seg_y >= half) == ylo)
            assert np.all((seg_x >= half) == xlo)

    def test_locality_beats_morton(self):
        # Hilbert's sliding-window footprint must not exceed Morton's: this
        # is the "moderate improvement over Morton" of Section VI.
        from repro.curves import average_jump

        ho = HilbertCurve(32)
        mo = MortonCurve(32)
        assert average_jump(ho, axis=1) <= average_jump(mo, axis=1) * 1.5


@settings(max_examples=30)
@given(
    order=st.integers(min_value=1, max_value=8),
    d=st.integers(min_value=0, max_value=2**16 - 2),
)
def test_consecutive_indices_adjacent(order, d):
    side = 1 << order
    if d + 1 >= side * side:
        d = side * side - 2
    c = HilbertCurve(side)
    y0, x0 = c.decode(d)
    y1, x1 = c.decode(d + 1)
    assert abs(y0 - y1) + abs(x0 - x1) == 1

class TestBatchLutPath:
    """The composed-LUT batch encoder vs the Lam-Shapiro scan reference."""

    @pytest.mark.parametrize("order", [0, 1, 2, 3, 4, 5, 6, 7, 9, 10, 12])
    def test_batch_matches_scan(self, order):
        # Orders straddling the chunk width hit every schedule shape:
        # remainder-only, exact multiples, and remainder + full chunks.
        from repro.curves.hilbert import (
            _decode_scan,
            _encode_scan,
            hilbert_decode_batch,
            hilbert_encode_batch,
        )

        side = 1 << order
        rng = np.random.default_rng(order)
        n = min(side * side, 4096)
        y = rng.integers(0, side, n, dtype=np.uint64)
        x = rng.integers(0, side, n, dtype=np.uint64)
        d = hilbert_encode_batch(y, x, order)
        np.testing.assert_array_equal(d, _encode_scan(y, x, side))
        yb, xb = hilbert_decode_batch(d, order)
        ys, xs = _decode_scan(d, side)
        np.testing.assert_array_equal(yb, ys)
        np.testing.assert_array_equal(xb, xs)

    @pytest.mark.parametrize("order", [1, 3, 6, 8])
    def test_full_domain_bijection(self, order):
        side = 1 << order
        c = HilbertCurve(side)
        yy, xx = np.meshgrid(
            np.arange(side, dtype=np.uint64),
            np.arange(side, dtype=np.uint64),
            indexing="ij",
        )
        d = c.encode(yy.ravel(), xx.ravel())
        assert len(np.unique(d)) == side * side
        y2, x2 = c.decode(d)
        np.testing.assert_array_equal(y2, yy.ravel())
        np.testing.assert_array_equal(x2, xx.ravel())

    def test_pair_luts_memoized(self):
        # Satellite: the composed tables are built once per width and
        # shared by every instance — identity, not just equality.
        from repro.curves.hilbert import _CHUNK_W, _pair_luts

        a = _pair_luts(_CHUNK_W)
        HilbertCurve(1 << (2 * _CHUNK_W)).encode(
            np.zeros(4, dtype=np.uint64), np.zeros(4, dtype=np.uint64)
        )
        b = _pair_luts(_CHUNK_W)
        assert all(x is y for x, y in zip(a, b))

    def test_matches_table_machine(self):
        # One level of the composed LUT must reproduce the one-step FSM.
        from repro.curves.hilbert import _pair_luts
        from repro.curves.hilbert_table import NEXT_TABLE, RANK_TABLE

        rank, nxt, pos, pnxt = _pair_luts(1)
        np.testing.assert_array_equal(rank, RANK_TABLE)
        np.testing.assert_array_equal(nxt, NEXT_TABLE)


@settings(max_examples=40)
@given(
    order=st.integers(min_value=1, max_value=11),
    seed=st.integers(min_value=0, max_value=2**31),
)
def test_batch_round_trip_property(order, seed):
    from repro.curves.hilbert import hilbert_decode_batch, hilbert_encode_batch

    side = 1 << order
    rng = np.random.default_rng(seed)
    y = rng.integers(0, side, 64, dtype=np.uint64)
    x = rng.integers(0, side, 64, dtype=np.uint64)
    d = hilbert_encode_batch(y, x, order)
    assert int(d.max(initial=0)) < side * side
    y2, x2 = hilbert_decode_batch(d, order)
    np.testing.assert_array_equal(y2, y)
    np.testing.assert_array_equal(x2, x)
