"""End-to-end integration: library -> simulator -> experiments -> outputs."""

import numpy as np
import pytest

from repro import (
    CurveMatrix,
    ExperimentRunner,
    SampleConfig,
    naive_matmul,
    recursive_matmul,
    relayout,
    tiled_matmul,
)
from repro.experiments import ResultSet, fig4_speedup, full_grid
from repro.kernels import reference_matmul, transpose
from repro.perf import CachegrindSim, events_from_hierarchy
from repro.sim import CacheSpec, MachineSpec, MulticoreTraceSim, SocketSim
from repro.trace import MatmulTraceSpec, naive_matmul_trace, trace_length


class TestKernelPipeline:
    def test_all_kernels_agree_across_layouts(self):
        """One matrix pushed through every kernel and layout combination."""
        rng = np.random.default_rng(99)
        dense_a = rng.random((32, 32))
        dense_b = rng.random((32, 32))
        want = dense_a @ dense_b
        for layout in ("rm", "mo", "ho"):
            a = CurveMatrix.from_dense(dense_a, layout)
            b = CurveMatrix.from_dense(dense_b, layout)
            for result in (
                naive_matmul(a, b),
                recursive_matmul(a, b, leaf=8),
                tiled_matmul(a, b, tile=8),
            ):
                np.testing.assert_allclose(result.to_dense(), want, rtol=1e-10)

    def test_layout_roundtrip_through_operations(self):
        rng = np.random.default_rng(98)
        dense = rng.random((16, 16))
        m = CurveMatrix.from_dense(dense, "rm")
        m = relayout(m, "mo")
        m = transpose(m)
        m = relayout(m, "ho")
        m = transpose(m)
        np.testing.assert_allclose(m.to_dense(), dense, rtol=1e-12)


class TestTraceKernelConsistency:
    def test_trace_addresses_match_kernel_gathers(self):
        """The trace generator and the executable kernel must describe the
        same computation: per-matrix access counts line up with the op
        counts, and every address decodes to a valid element."""
        n = 8
        spec = MatmulTraceSpec.uniform(n, "mo")
        total = sum(len(c) for c in naive_matmul_trace(spec))
        assert total == trace_length(n)
        from repro.kernels import naive_opcount

        ops = naive_opcount(n, "mo")
        assert total == ops.loads + ops.stores - n * n  # C load is the write slot

    def test_simulated_counters_flow_to_papi_events(self):
        machine = MachineSpec(
            name="t", sockets=1, cores_per_socket=1,
            l1=CacheSpec("L1", 512, 64, 2),
            l2=CacheSpec("L2", 1024, 64, 2),
            l3=CacheSpec("L3", 4096, 64, 4),
        )
        sim = MulticoreTraceSim(machine, MatmulTraceSpec.uniform(8, "rm"))
        result = sim.run()
        events = events_from_hierarchy(result)
        assert events["PAPI_LD_INS"] + events["PAPI_SR_INS"] == trace_length(8)
        assert events["PAPI_L3_TCM"] <= events["PAPI_L2_DCM"] <= events["PAPI_L1_DCM"]


class TestExperimentPipeline:
    def test_grid_to_json_to_figures(self, tmp_path):
        runner = ExperimentRunner()
        subset = [c for c in full_grid() if c.size_exp == 10][:24]
        rs = runner.run_grid(subset)
        path = tmp_path / "grid.json"
        rs.to_json(path)
        back = ResultSet.from_json(path)
        assert len(back) == 24
        for cfg in subset:
            assert back.get(cfg).seconds == pytest.approx(rs.get(cfg).seconds)

    def test_fig4_consistent_with_runner_times(self):
        runner = ExperimentRunner()
        panels = fig4_speedup(runner)
        mo = next(s for s in panels[11] if s.label == "MO")
        t1 = runner.run(SampleConfig("mo", 11, "ondemand", "1s")).seconds
        t16 = runner.run(SampleConfig("mo", 11, "ondemand", "16d")).seconds
        assert mo.y[-1] == pytest.approx(t1 / t16)

    def test_cachegrind_totals_balance(self):
        from repro.sim import CACHEGRIND_LIKE, scaled_machine

        machine = scaled_machine(CACHEGRIND_LIKE, 256)
        sim = CachegrindSim(machine)
        spec = MatmulTraceSpec.uniform(32, "ho")
        report = sim.run(naive_matmul_trace(spec, rows=[15, 16]))
        per_tag_ll = sum(t.ll_misses for t in report.per_tag)
        assert per_tag_ll == report.ll_misses
