"""Cross-process trace propagation: one tree covering parent + workers."""

from dataclasses import asdict

import pytest

from repro import obs
from repro.experiments import run_cachegrind_study
from repro.obs.report import load_trace, render_report
from repro.sim import CacheSpec, MachineSpec, MulticoreTraceSim
from repro.trace import MatmulTraceSpec


def machine():
    return MachineSpec(
        name="mini16",
        sockets=2,
        cores_per_socket=8,
        l1=CacheSpec("L1", 512, 64, 2),
        l2=CacheSpec("L2", 2048, 64, 4),
        l3=CacheSpec("L3", 16 * 1024, 64, 8),
    )


def span_tree_is_connected(spans):
    """Every span's parent resolves within the trace (or is a root)."""
    ids = {s["span"] for s in spans}
    roots = [s for s in spans if s["parent"] is None]
    dangling = [
        s for s in spans
        if s["parent"] is not None and s["parent"] not in ids
    ]
    return roots, dangling


class TestParallelSimTrace:
    def test_workers2_single_tree(self, tmp_path):
        path = tmp_path / "t.jsonl"
        spec = MatmulTraceSpec.uniform(32, "mo")
        sim0 = MulticoreTraceSim(
            machine(), spec, threads=2, sockets_used=1, workers=2
        )
        r0 = sim0.run(rows=[14, 15, 16])
        with obs.ObsSession(trace=path):
            sim = MulticoreTraceSim(
                machine(), spec, threads=2, sockets_used=1, workers=2
            )
            r1 = sim.run(rows=[14, 15, 16])

        # tracing didn't perturb the simulation
        assert r0.l3.misses == r1.l3.misses
        assert r0.dram_lines == r1.dram_lines

        t = load_trace(path)
        assert t["dropped"] == 0
        spans = t["spans"]
        names = {s["name"] for s in spans}
        assert {"session", "sim.multicore.run", "parallel.run",
                "parallel.l3_replay", "parallel.worker"} <= names

        # worker spans come from distinct worker processes
        worker_spans = [s for s in spans if s["name"] == "parallel.worker"]
        assert len(worker_spans) == 2
        parent_pid = next(
            s["pid"] for s in spans if s["name"] == "parallel.run"
        )
        worker_pids = {s["pid"] for s in worker_spans}
        assert len(worker_pids) == 2 and parent_pid not in worker_pids

        # one connected tree: workers parent under parallel.run
        roots, dangling = span_tree_is_connected(spans)
        assert len(roots) == 1 and roots[0]["name"] == "session"
        assert not dangling
        run_id = next(
            s["span"] for s in spans if s["name"] == "parallel.run"
        )
        assert all(w["parent"] == run_id for w in worker_spans)

        report = render_report(path)
        assert "parallel.worker" in report
        assert str(tmp_path) not in report


class TestStudyPoolTrace:
    def test_cachegrind_pool_workers_traced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            traced = run_cachegrind_study(n=32, n_rows=2, workers=2)
        baseline = run_cachegrind_study(n=32, n_rows=2)
        assert {s: asdict(r) for s, r in traced.reports.items()} == {
            s: asdict(r) for s, r in baseline.reports.items()
        }

        t = load_trace(path)
        spans = t["spans"]
        scheme_spans = [
            s for s in spans if s["name"] == "study.cachegrind.scheme"
        ]
        assert {s["attrs"]["scheme"] for s in scheme_spans} == {
            "mo", "ho"
        }  # defaults
        study_pid = next(
            s["pid"] for s in spans if s["name"] == "study.cachegrind"
        )
        assert any(s["pid"] != study_pid for s in scheme_spans)
        roots, dangling = span_tree_is_connected(spans)
        assert len(roots) == 1 and not dangling
