"""Worker-side metrics aggregation across the process boundary.

PR 5 shipped worker span propagation but attached workers *without* a
metrics registry, so worker-side cache counters silently vanished from
session snapshots.  The parallel engine now installs a fresh registry in
each worker and merges its export back into the parent's; pool-based
studies declare their un-metered workers via a ``workers_unmetered``
gauge instead.
"""

from repro import obs
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.sim import CacheSpec, MachineSpec, MulticoreTraceSim
from repro.trace import MatmulTraceSpec


def machine():
    return MachineSpec(
        name="mini16",
        sockets=2,
        cores_per_socket=8,
        l1=CacheSpec("L1", 512, 64, 2),
        l2=CacheSpec("L2", 2048, 64, 4),
        l3=CacheSpec("L3", 16 * 1024, 64, 8),
    )


class TestRegistryMerge:
    def test_counters_add_gauges_overwrite(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        a.count("hits", 3, level="L1")
        b.count("hits", 4, level="L1")
        b.count("misses", 1)
        a.gauge("depth", 2)
        b.gauge("depth", 5)
        a.merge(b.export())
        snap = a.snapshot()
        assert snap["counters"]["hits{level=L1}"] == 7
        assert snap["counters"]["misses"] == 1
        assert snap["gauges"]["depth"] == 5

    def test_histograms_merge_exactly(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        ref = Histogram()
        for v, reg in [(1, a), (100, b), (3, b), (7, a)]:
            reg.observe("lat", v)
            ref.observe(v)
        a.merge(b.export())
        assert a.snapshot()["histograms"]["lat"] == ref.snapshot()

    def test_merge_into_empty(self):
        a, b = MetricsRegistry(), MetricsRegistry()
        b.observe("lat", 2.0)
        b.count("n")
        a.merge(b.export())
        assert a.snapshot() == b.snapshot()

    def test_export_is_plain_data(self):
        import pickle

        r = MetricsRegistry()
        r.count("n", 2, k="v")
        r.observe("lat", 3)
        assert pickle.loads(pickle.dumps(r.export())) == r.export()


class TestWorkerContext:
    def test_metrics_only_session_yields_context(self, tmp_path):
        with obs.ObsSession(metrics=tmp_path / "m.json"):
            ctx = obs.worker_context()
            assert ctx is not None
            assert ctx.metrics and ctx.path is None

    def test_attach_installs_fresh_registry(self, tmp_path):
        with obs.ObsSession(metrics=tmp_path / "m.json"):
            obs.count("parent.only")
            ctx = obs.worker_context()
            parent_registry = obs.OBS.metrics
            with obs.attach(ctx):
                assert obs.metrics_active()
                assert obs.OBS.metrics is not parent_registry
                obs.count("worker.only")
                worker_snap = obs.OBS.metrics.snapshot()
            assert obs.OBS.metrics is parent_registry
        assert worker_snap["counters"] == {"worker.only": 1}

    def test_off_means_none(self):
        assert obs.worker_context() is None


class TestParallelAggregation:
    def test_parallel_snapshot_matches_serial(self, tmp_path):
        spec = MatmulTraceSpec.uniform(16, "rm")

        def counters(workers):
            with obs.ObsSession(metrics=tmp_path / f"m{workers}.json"):
                sim = MulticoreTraceSim(
                    machine(), spec, threads=2, sockets_used=1,
                    workers=workers,
                )
                sim.run()
                return sim.result().l3.misses, obs.OBS.metrics.snapshot()

        misses_serial, serial = counters(None)
        misses_parallel, parallel = counters(2)
        assert misses_serial == misses_parallel

        def cache_counters(snap):
            return {
                k: v for k, v in snap["counters"].items()
                if k.startswith("cache.")
            }

        # Worker-side cache counters now ride home with the result
        # stream: the parallel snapshot reports the same cache work the
        # serial one does.
        assert cache_counters(parallel) == cache_counters(serial)
        assert cache_counters(parallel)  # and they are not trivially empty


class TestPoolStudiesGauge:
    def test_mrc_pool_declares_unmetered_workers(self, tmp_path):
        from repro.experiments import run_mrc_study

        with obs.ObsSession(metrics=tmp_path / "m.json"):
            run_mrc_study(
                n=16, schemes=("rm", "mo"), u_values=(1.0,), sample_rows=1,
                workers=2,
            )
            snap = obs.OBS.metrics.snapshot()
        assert snap["gauges"]["workers_unmetered{study=mrc}"] == 2
