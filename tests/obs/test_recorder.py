"""Tracing core: span nesting, journal format, sessions, contexts."""

import json
import os

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.core import OBS
from repro.robust.journal import CheckpointJournal, payload_sha


def spans_of(path):
    replay = CheckpointJournal(path).replay()
    assert replay.dropped == 0
    return [p for k, p in replay.records if k == "span"]


class TestDisabledPath:
    def test_span_returns_null_singleton(self):
        assert obs.span("x") is obs.NULL_SPAN
        assert obs.span("y", a=1) is obs.NULL_SPAN
        assert obs.phase_span("z") is obs.NULL_SPAN

    def test_null_span_is_reentrant_noop(self):
        with obs.span("x") as s:
            with obs.span("x") as inner:
                inner.set(k=2)
            s.set(k=1)

    def test_metric_hooks_noop(self):
        obs.count("c")
        obs.gauge("g", 1.5)
        obs.observe("h", 3)
        assert OBS.metrics is None

    def test_activity_predicates(self):
        assert not obs.tracing_active()
        assert not obs.metrics_active()
        assert not obs.profiling_active()

    def test_worker_context_none_when_off(self):
        assert obs.worker_context() is None

    def test_attach_none_is_noop(self):
        with obs.attach(None):
            assert OBS.recorder is None


class TestRecorder:
    def test_records_are_journal_format(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            with obs.span("work", n=3):
                pass
        for line in path.read_text().splitlines():
            rec = json.loads(line)
            assert rec["v"] == 1
            assert rec["sha"] == payload_sha(rec["kind"], rec["payload"])

    def test_span_tree_nesting(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            with obs.span("outer"):
                with obs.span("inner.a"):
                    pass
                with obs.span("inner.b"):
                    pass
        spans = spans_of(path)
        by_name = {s["name"]: s for s in spans}
        # children close before parents; all four spans present
        assert set(by_name) == {"session", "outer", "inner.a", "inner.b"}
        assert by_name["inner.a"]["parent"] == by_name["outer"]["span"]
        assert by_name["inner.b"]["parent"] == by_name["outer"]["span"]
        assert by_name["outer"]["parent"] == by_name["session"]["span"]
        assert by_name["session"]["parent"] is None

    def test_span_ids_unique_and_pid_scoped(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            for _ in range(5):
                with obs.span("w"):
                    pass
        spans = spans_of(path)
        ids = [s["span"] for s in spans]
        assert len(set(ids)) == len(ids)
        pid_hex = f"{os.getpid():x}"
        assert all(i.startswith(pid_hex + ".") for i in ids)

    def test_timings_and_attrs(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            with obs.span("work", scheme="mo") as s:
                s.set(points=7)
        (work,) = [s for s in spans_of(path) if s["name"] == "work"]
        assert work["wall_s"] >= 0 and work["cpu_s"] >= 0
        assert work["attrs"] == {"scheme": "mo", "points": 7}

    def test_exception_recorded_and_propagates(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with pytest.raises(RuntimeError, match="boom"):
            with obs.ObsSession(trace=path):
                with obs.span("explode"):
                    raise RuntimeError("boom")
        (sp,) = [s for s in spans_of(path) if s["name"] == "explode"]
        assert sp["attrs"]["error"] == "RuntimeError"

    def test_non_json_attrs_coerced(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            with obs.span("w", rows=range(3), sizes=(1, 2)):
                pass
        (w,) = [s for s in spans_of(path) if s["name"] == "w"]
        assert w["attrs"]["rows"] == "range(0, 3)"
        assert w["attrs"]["sizes"] == [1, 2]

    def test_appends_to_existing_file(self, tmp_path):
        path = tmp_path / "t.jsonl"
        for _ in range(2):
            with obs.ObsSession(trace=path):
                pass
        replay = CheckpointJournal(path).replay()
        kinds = [k for k, _ in replay.records]
        assert kinds.count("trace_begin") == 2


class TestSession:
    def test_requires_a_sink(self):
        with pytest.raises(ObservabilityError, match="sink"):
            obs.ObsSession()

    def test_state_restored_on_exit(self, tmp_path):
        with obs.ObsSession(trace=tmp_path / "t.jsonl"):
            assert obs.tracing_active()
        assert not obs.tracing_active()
        assert OBS.metrics is None and not OBS.profile

    def test_state_restored_on_error(self, tmp_path):
        with pytest.raises(ValueError):
            with obs.ObsSession(trace=tmp_path / "t.jsonl"):
                raise ValueError("x")
        assert not obs.tracing_active()

    def test_metrics_only_session(self, tmp_path):
        mpath = tmp_path / "m.json"
        with obs.ObsSession(metrics=mpath):
            obs.count("events", 3)
            assert not obs.tracing_active()
        snap = json.loads(mpath.read_text())
        assert snap["counters"]["events"] == 3

    def test_profile_session_embeds_profile(self, tmp_path):
        tpath, mpath = tmp_path / "t.jsonl", tmp_path / "m.json"
        with obs.ObsSession(trace=tpath, metrics=mpath, profile=True):
            sum(i * i for i in range(200_000))
        replay = CheckpointJournal(tpath).replay()
        (prof,) = [p for k, p in replay.records if k == "profile"]
        assert prof["hz"] == 67.0 and prof["samples"] >= 0
        snap = json.loads(mpath.read_text())
        assert "profile" in snap

    def test_bad_profile_hz(self, tmp_path):
        with pytest.raises(ObservabilityError, match="profile_hz"):
            obs.ObsSession(trace=tmp_path / "t.jsonl", profile_hz=0)


class TestSpanContext:
    def test_context_is_picklable(self, tmp_path):
        import pickle

        with obs.ObsSession(trace=tmp_path / "t.jsonl"):
            with obs.span("parent"):
                ctx = obs.worker_context()
                clone = pickle.loads(pickle.dumps(ctx))
        assert clone == ctx
        assert clone.parent_id is not None

    def test_attach_parents_under_context(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            with obs.span("parent"):
                ctx = obs.worker_context()
        # Simulate the worker side: fresh attach in the same process.
        with obs.attach(ctx):
            with obs.span("child"):
                pass
        spans = spans_of(path)
        by_name = {s["name"]: s for s in spans}
        assert by_name["child"]["parent"] == by_name["parent"]["span"]
        assert not obs.tracing_active()

    def test_attach_does_not_install_metrics(self, tmp_path):
        with obs.ObsSession(trace=tmp_path / "t.jsonl"):
            ctx = obs.worker_context()
        with obs.attach(ctx):
            assert OBS.metrics is None

    def test_profile_flag_rides_context(self, tmp_path):
        with obs.ObsSession(trace=tmp_path / "t.jsonl", profile=True):
            ctx = obs.worker_context()
        assert ctx.profile
        with obs.attach(ctx):
            assert obs.profiling_active()
        assert not obs.profiling_active()


class TestPhaseSpan:
    def test_inert_without_profile(self, tmp_path):
        with obs.ObsSession(trace=tmp_path / "t.jsonl"):
            assert obs.phase_span("hot") is obs.NULL_SPAN

    def test_emitted_with_profile_and_captures_memory(self, tmp_path):
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path, profile=True):
            with obs.phase_span("hot"):
                data = bytearray(4 << 20)
                del data
        (hot,) = [s for s in spans_of(path) if s["name"] == "hot"]
        assert hot["mem_peak_kb"] > 4000
