"""The inertness guarantee, enforced differentially.

With no session installed every obs hook must be a no-op, and with a
session installed the *instrumented computation* must be unchanged:
study, mrc and sweep outputs bit-identical with tracing+metrics on vs
off, and the disabled hooks cheap enough (<2% on a worst-case
micro-benchmark) that instrumented hot paths stay fast.
"""

import time
from dataclasses import asdict

from repro import obs
from repro.experiments import run_cachegrind_study, run_mrc_study
from repro.experiments.configs import SampleConfig
from repro.experiments.sweep import SweepEngine


def study_payload(study):
    return {
        "n": study.n,
        "rows": list(study.rows),
        "reports": {s: asdict(r) for s, r in study.reports.items()},
    }


def curves_payload(curves):
    return [
        (c.scheme, c.n, c.assoc, sorted(c.mpi_capacity.items()),
         sorted(c.mpi_total.items()))
        for c in curves
    ]


SMALL_GRID = [
    SampleConfig(scheme, size, 2.6, threads)
    for scheme in ("rm", "mo")
    for size in (10, 11)
    for threads in ("1s", "8s")
]


class TestBitIdentity:
    def test_cachegrind_study(self, tmp_path):
        baseline = run_cachegrind_study(n=32, n_rows=3)
        with obs.ObsSession(
            trace=tmp_path / "t.jsonl", metrics=tmp_path / "m.json"
        ):
            traced = run_cachegrind_study(n=32, n_rows=3)
        assert study_payload(baseline) == study_payload(traced)

    def test_mrc_study(self, tmp_path):
        kw = dict(n=16, schemes=("rm", "mo"), u_values=(1.0, 4.0),
                  sample_rows=1)
        baseline = run_mrc_study(**kw)
        with obs.ObsSession(
            trace=tmp_path / "t.jsonl", metrics=tmp_path / "m.json"
        ):
            traced = run_mrc_study(**kw)
        assert curves_payload(baseline) == curves_payload(traced)

    def test_sweep(self, tmp_path):
        baseline = SweepEngine(workers=1, cache_dir=None).run(SMALL_GRID)
        with obs.ObsSession(
            trace=tmp_path / "t.jsonl", metrics=tmp_path / "m.json"
        ):
            traced = SweepEngine(workers=1, cache_dir=None).run(SMALL_GRID)
        assert [r.to_dict() for r in baseline] == [r.to_dict() for r in traced]

    def test_profiling_does_not_change_study_output(self, tmp_path):
        baseline = run_cachegrind_study(n=32, n_rows=2, engine="fast")
        with obs.ObsSession(trace=tmp_path / "t.jsonl", profile=True):
            profiled = run_cachegrind_study(n=32, n_rows=2, engine="fast")
        assert study_payload(baseline) == study_payload(profiled)


class TestDisabledOverhead:
    def test_disabled_hooks_under_two_percent(self):
        """Worst-case bound: hook cost vs the cheapest instrumented unit.

        The instrumentation fires a handful of hook calls per simulated
        *chunk* (never per access).  Compare the measured per-call cost
        of a disabled hook against the time to simulate one small chunk
        through the exact cache — the cheapest real unit of work a hook
        ever rides on — and require hooks to be <2% even if every chunk
        carried ten of them.
        """
        import numpy as np

        from repro.sim.cache import Cache
        from repro.sim.config import CacheSpec

        reps = 20_000
        t0 = time.perf_counter()
        for _ in range(reps):
            with obs.span("x", a=1):
                pass
            obs.count("c", 1, level="L1")
        hook_s = (time.perf_counter() - t0) / (2 * reps)

        cache = Cache(CacheSpec("L1", 32 * 1024, 64, 8))
        rng = np.random.default_rng(0)
        lines = rng.integers(0, 4096, size=4096, dtype=np.int64)
        writes = np.zeros(4096, dtype=bool)
        cache.access_lines(lines, writes)  # warm
        t0 = time.perf_counter()
        chunks = 20
        for _ in range(chunks):
            cache.access_lines(lines, writes)
        chunk_s = (time.perf_counter() - t0) / chunks

        assert 10 * hook_s < 0.02 * chunk_s, (
            f"disabled hook {hook_s * 1e9:.0f} ns vs chunk "
            f"{chunk_s * 1e6:.0f} us"
        )
