"""trace-report rendering + the path-redaction regression suite."""

import pytest

from repro import obs
from repro.errors import ObservabilityError
from repro.obs.redact import redact, redact_str
from repro.obs.report import load_trace, render_report


def make_trace(path, profile=False):
    with obs.ObsSession(trace=path, profile=profile):
        with obs.span("outer", scheme="mo"):
            with obs.span("inner"):
                sum(range(10000))
    return path


class TestRedaction:
    """Regression: reports and snapshots must be machine-independent."""

    def test_absolute_unix_path(self):
        assert redact_str("/home/user/repo/trace.jsonl") == "<redacted>/trace.jsonl"

    def test_home_relative_path(self):
        assert redact_str("~/work/out.json") == "<redacted>/out.json"

    def test_windows_drive_path(self):
        assert redact_str(r"C:\Users\u\trace.jsonl") == "<redacted>/trace.jsonl"

    def test_profiler_frame_keeps_line_number(self):
        got = redact_str("/usr/lib/python3.12/threading.py:637")
        assert got == "<redacted>/threading.py:637"

    def test_path_inside_sentence(self):
        got = redact_str("wrote /tmp/xyz/m.json and exited")
        assert got == "wrote <redacted>/m.json and exited"

    def test_relative_paths_untouched(self):
        assert redact_str("tests/golden/data/x.json") == "tests/golden/data/x.json"

    def test_non_paths_untouched(self):
        assert redact_str("ratio 3/4 holds") == "ratio 3/4 holds"

    def test_recursive_over_structures(self):
        obj = {
            "/root/a/b.py:3": ["/var/t/x.jsonl", {"k": "/opt/q/y.json"}],
            "n": 3,
        }
        got = redact(obj)
        assert got == {
            "<redacted>/b.py:3": ["<redacted>/x.jsonl", {"k": "<redacted>/y.json"}],
            "n": 3,
        }

    def test_report_output_has_no_absolute_paths(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl", profile=True)
        # Make sure there is at least one path-bearing attr in the trace.
        report = render_report(trace)
        assert str(tmp_path) not in report

    def test_metrics_snapshot_has_no_absolute_paths(self, tmp_path):
        mpath = tmp_path / "m.json"
        with obs.ObsSession(metrics=mpath):
            obs.gauge("telemetry.path", str(tmp_path / "tele.jsonl"))
        text = mpath.read_text()
        assert str(tmp_path) not in text
        assert "<redacted>/tele.jsonl" in text


class TestLoadTrace:
    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(ObservabilityError, match="not found"):
            load_trace(tmp_path / "nope.jsonl")

    def test_loads_spans_and_begin(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        t = load_trace(trace)
        assert {s["name"] for s in t["spans"]} == {"session", "outer", "inner"}
        assert t["begin"]["trace_id"].startswith("t")
        assert t["dropped"] == 0

    def test_torn_tail_tolerated(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        with open(trace, "a") as fh:
            fh.write('{"v": 1, "kind": "span", "payl')  # torn write
        t = load_trace(trace)
        assert t["dropped"] == 1
        assert {s["name"] for s in t["spans"]} == {"session", "outer", "inner"}


class TestRenderReport:
    def test_tree_and_hotspots(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        report = render_report(trace)
        assert "span tree (wall time)" in report
        assert "hotspots by self time" in report
        # nesting: inner indented under outer under session (look only at
        # the tree section — the hotspot table repeats the names)
        lines = report.splitlines()
        tree = lines[:next(
            i for i, l in enumerate(lines) if l.startswith("hotspots")
        )]
        (outer_line,) = [l for l in tree if l.lstrip().startswith("outer")]
        (inner_line,) = [l for l in tree if l.lstrip().startswith("inner")]
        assert len(inner_line) - len(inner_line.lstrip()) > (
            len(outer_line) - len(outer_line.lstrip())
        )

    def test_attrs_rendered(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        assert "scheme=mo" in render_report(trace)

    def test_self_time_excludes_children(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        t = load_trace(trace)
        by_name = {s["name"]: s for s in t["spans"]}
        lines = render_report(trace).splitlines()
        table = lines[lines.index(next(
            l for l in lines if l.startswith("hotspots")
        )) + 2:]
        # outer's total includes inner; its self time must be smaller.
        for line in table:
            parts = line.split()
            if parts and parts[0] == "outer":
                self_s, total_s = float(parts[2]), float(parts[3])
                assert self_s <= total_s
                # the table renders 4 decimals; compare at that precision
                assert total_s == pytest.approx(
                    by_name["outer"]["wall_s"], abs=5.1e-5
                )
                break
        else:
            pytest.fail("outer row not found in hotspot table")

    def test_empty_trace_raises(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ObservabilityError, match="no spans"):
            render_report(path)

    def test_torn_tail_warning_shown(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl")
        with open(trace, "a") as fh:
            fh.write("garbage\n")
        assert "damaged trailing record" in render_report(trace)

    def test_profile_section(self, tmp_path):
        trace = make_trace(tmp_path / "t.jsonl", profile=True)
        assert "sampling profile" in render_report(trace)

    def test_crash_orphan_spans_become_roots(self, tmp_path):
        # A worker whose parent span never closed (crash): its spans
        # still render, as additional roots.
        path = tmp_path / "t.jsonl"
        with obs.ObsSession(trace=path):
            ctx = obs.SpanContext(
                path=str(path), trace_id="tX", parent_id="dead.99",
            )
            with obs.attach(ctx):
                with obs.span("orphan"):
                    pass
        report = render_report(path)
        assert "orphan" in report
