"""Metrics registry: series keys, histograms, snapshots, redacted writes."""

import json

from repro.obs.metrics import Histogram, MetricsRegistry, series_key


class TestSeriesKey:
    def test_bare_name(self):
        assert series_key("hits", {}) == "hits"

    def test_labels_sorted(self):
        assert (
            series_key("hits", {"level": "L1", "engine": "fast"})
            == "hits{engine=fast,level=L1}"
        )


class TestCounters:
    def test_accumulates(self):
        m = MetricsRegistry()
        m.count("c")
        m.count("c", 4)
        assert m.counter_value("c") == 5

    def test_labelled_series_independent(self):
        m = MetricsRegistry()
        m.count("c", 1, level="L1")
        m.count("c", 2, level="L2")
        assert m.counter_value("c", level="L1") == 1
        assert m.counter_value("c", level="L2") == 2
        assert m.counter_value("c") == 0


class TestGauges:
    def test_last_write_wins(self):
        m = MetricsRegistry()
        m.gauge("g", 1)
        m.gauge("g", 7.5)
        assert m.snapshot()["gauges"]["g"] == 7.5


class TestHistogram:
    def test_basic_stats(self):
        h = Histogram()
        for v in (1, 2, 3, 100):
            h.observe(v)
        snap = h.snapshot()
        assert snap["count"] == 4
        assert snap["sum"] == 106
        assert snap["min"] == 1 and snap["max"] == 100

    def test_power_of_two_buckets(self):
        h = Histogram()
        h.observe(0.5)   # le_2^0
        h.observe(3)     # le_2^2
        h.observe(100)   # le_2^7
        assert h.snapshot()["buckets"] == {
            "le_2^0": 1, "le_2^2": 1, "le_2^7": 1,
        }

    def test_registry_observe(self):
        m = MetricsRegistry()
        m.observe("lat", 5, stage="replay")
        m.observe("lat", 9, stage="replay")
        snap = m.snapshot()["histograms"]["lat{stage=replay}"]
        assert snap["count"] == 2 and snap["sum"] == 14


class TestSnapshot:
    def test_deterministic_key_order(self):
        m = MetricsRegistry()
        m.count("z")
        m.count("a")
        assert list(m.snapshot()["counters"]) == ["a", "z"]

    def test_versioned(self):
        assert MetricsRegistry().snapshot()["v"] == 1

    def test_write_is_redacted(self, tmp_path):
        m = MetricsRegistry()
        m.gauge("cache.dir", f"{tmp_path}/sweep-cache")
        out = tmp_path / "m.json"
        m.write(out)
        snap = json.loads(out.read_text())
        assert snap["gauges"]["cache.dir"] == "<redacted>/sweep-cache"
        assert str(tmp_path) not in out.read_text()

    def test_write_atomic_no_tmp_left(self, tmp_path):
        m = MetricsRegistry()
        out = tmp_path / "m.json"
        m.write(out)
        assert out.exists()
        assert not list(tmp_path.glob("*.tmp"))
