"""Every shipped example must run clean (deliverable guard)."""

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"


def run_example(name, capsys):
    path = EXAMPLES / name
    assert path.exists(), f"missing example {name}"
    runpy.run_path(str(path), run_name="__main__")
    return capsys.readouterr().out


def test_quickstart(capsys):
    out = run_example("quickstart.py", capsys)
    assert "Index-computation cost" in out


def test_curve_gallery(capsys):
    out = run_example("curve_gallery.py", capsys)
    assert "Fig. 1" in out
    assert "tile span" in out


def test_future_work(capsys):
    out = run_example("future_work.py", capsys)
    assert "ho-hw" in out
    assert "bit swap" in out


def test_sparse_and_stencil(capsys):
    out = run_example("sparse_and_stencil.py", capsys)
    assert "SpMV" in out
    assert "conserved" in out


def test_conflict_misses(capsys):
    out = run_example("conflict_misses.py", capsys)
    assert "conflict" in out
    assert "padded" in out


@pytest.mark.slow
def test_energy_study(capsys):
    out = run_example("energy_study.py", capsys)
    assert "TABLE IV" in out
    assert "[PASS]" in out
    assert "[FAIL]" not in out


@pytest.mark.slow
def test_cache_explorer(capsys):
    out = run_example("cache_explorer.py", capsys)
    assert "HO / MO ratio" in out
