"""Command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_unknown_command(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["nope"])


class TestCommands:
    def test_table4(self, capsys):
        assert main(["table4"]) == 0
        out = capsys.readouterr().out
        assert "TABLE IV" in out
        assert "Dual Socket" in out

    def test_fig4(self, capsys):
        assert main(["fig4"]) == 0
        out = capsys.readouterr().out
        assert "Fig 4" in out and "MO" in out

    def test_fig5(self, capsys):
        assert main(["fig5"]) == 0
        assert "1200MHz" in capsys.readouterr().out

    def test_fig6(self, capsys):
        assert main(["fig6"]) == 0
        out = capsys.readouterr().out
        assert "Energy [J]" in out and "DRAM" in out

    def test_predict(self, capsys):
        assert main(["predict", "--scheme", "mo", "--size", "11",
                     "--frequency", "1.8", "--threads", "8d"]) == 0
        out = capsys.readouterr().out
        assert "mo-11-1800MHz-8d" in out
        assert "energy" in out

    def test_predict_ondemand(self, capsys):
        assert main(["predict", "--frequency", "ondemand"]) == 0
        assert "ondemand" in capsys.readouterr().out

    def test_validate_passes(self, capsys):
        assert main(["validate"]) == 0
        out = capsys.readouterr().out
        assert "PASS" in out and "FAIL" not in out

    def test_cachegrind_small(self, capsys):
        assert main(["cachegrind", "--n", "64", "--rows", "2"]) == 0
        out = capsys.readouterr().out
        assert "HO / MO ratio" in out
        assert "LL  misses" in out

    def test_atlas_small(self, capsys):
        assert main(["atlas", "--side", "64"]) == 0
        assert "speedup" in capsys.readouterr().out

    def test_hardware(self, capsys):
        assert main(["hardware", "--size", "11", "--threads", "8s"]) == 0
        out = capsys.readouterr().out
        assert "ho-hw" in out and "mo-inc" in out

    def test_edp(self, capsys):
        assert main(["edp"]) == 0
        out = capsys.readouterr().out
        assert "min EDP" in out

    def test_roofline(self, capsys):
        assert main(["roofline"]) == 0
        out = capsys.readouterr().out
        assert "memory-bound" in out

    def test_scaling(self, capsys):
        assert main(["scaling"]) == 0
        out = capsys.readouterr().out
        assert "eff" in out and "HO size 12" in out

    def test_query_small(self, capsys):
        assert main(["query", "--grid", "8", "--tile", "4",
                     "--queries", "8"]) == 0
        out = capsys.readouterr().out
        assert "workload" in out and "util" in out
        assert "HO" in out and "MO" in out and "RM" in out

    def test_query_rejects_unknown_workload(self, capsys):
        assert main(["query", "--grid", "8", "--workloads", "join"]) == 1
        assert "error" in capsys.readouterr().err

    def test_gallery(self, capsys):
        assert main(["gallery", "--order", "1"]) == 0
        out = capsys.readouterr().out
        assert "Morton" in out and "Hilbert" in out


class TestSweep:
    def test_sweep_no_cache(self, capsys):
        assert main(["sweep", "--workers", "1", "--no-cache"]) == 0
        out = capsys.readouterr().out
        assert "swept 216 points" in out

    def test_sweep_cold_then_warm_cache(self, capsys, tmp_path):
        cache = str(tmp_path / "cache")
        assert main(["sweep", "--workers", "1", "--cache-dir", cache]) == 0
        first = capsys.readouterr().out
        assert "0 cache hits" in first
        assert main(["sweep", "--workers", "1", "--cache-dir", cache]) == 0
        second = capsys.readouterr().out
        assert "216 cache hits (100%)" in second
        assert (tmp_path / "cache" / "telemetry.jsonl").exists()

    def test_sweep_output_and_resume(self, capsys, tmp_path):
        out_path = str(tmp_path / "results.json")
        assert main(["sweep", "--workers", "1", "--no-cache",
                     "--output", out_path]) == 0
        capsys.readouterr()
        assert main(["sweep", "--workers", "1", "--no-cache",
                     "--output", out_path, "--resume"]) == 0
        assert "216 resumed" in capsys.readouterr().out

    def test_sweep_csv_output(self, capsys, tmp_path):
        out_path = str(tmp_path / "results.csv")
        assert main(["sweep", "--workers", "1", "--no-cache",
                     "--output", out_path]) == 0
        from repro.experiments import ResultSet

        assert len(ResultSet.from_csv(out_path)) == 216

    def test_sweep_dist_transport(self, capsys, tmp_path):
        board = str(tmp_path / "board")
        out_path = str(tmp_path / "results.json")
        assert main(["sweep", "--transport", "dist", "--board", board,
                     "--workers", "1", "--no-cache",
                     "--output", out_path]) == 0
        out = capsys.readouterr().out
        assert "swept 216 points" in out
        assert f"board: {board}" in out
        from repro.experiments import ResultSet

        assert len(ResultSet.from_json(out_path)) == 216

    def test_report_through_sweep_engine(self, tmp_path):
        from repro.experiments import SweepEngine, generate_report

        engine = SweepEngine(workers=1, cache_dir=tmp_path / "c")
        text = generate_report(fast=True, sweep=engine)
        assert "TABLE IV" in text
        assert engine.stats.points == 216


class TestObservabilityFlags:
    def test_cachegrind_trace_metrics_profile(self, capsys, tmp_path):
        trace = str(tmp_path / "run.jsonl")
        metrics = str(tmp_path / "run.json")
        assert main(["cachegrind", "--n", "32", "--rows", "2",
                     "--trace", trace, "--metrics", metrics,
                     "--profile"]) == 0
        assert "HO / MO ratio" in capsys.readouterr().out

        import json

        snap = json.loads((tmp_path / "run.json").read_text())
        assert any(k.startswith("cache.accesses") for k in snap["counters"])
        assert "profile" in snap

        assert main(["trace-report", trace, "--top", "5"]) == 0
        out = capsys.readouterr().out
        assert "study.cachegrind" in out
        assert "hotspots by self time" in out

    def test_mrc_trace(self, capsys, tmp_path):
        trace = str(tmp_path / "mrc.jsonl")
        assert main(["mrc", "--n", "16", "--rows", "1",
                     "--trace", trace]) == 0
        capsys.readouterr()
        assert main(["trace-report", trace]) == 0
        assert "study.mrc" in capsys.readouterr().out

    def test_sweep_metrics(self, capsys, tmp_path):
        metrics = str(tmp_path / "sweep.json")
        assert main(["sweep", "--workers", "1", "--no-cache",
                     "--metrics", metrics]) == 0
        capsys.readouterr()
        import json

        snap = json.loads((tmp_path / "sweep.json").read_text())
        assert snap["counters"]["sweep.points"] == 216

    def test_profile_without_sink_exits_1(self, capsys):
        assert main(["cachegrind", "--n", "32", "--rows", "2",
                     "--profile"]) == 1
        assert "--trace and/or --metrics" in capsys.readouterr().err

    def test_trace_report_missing_file_exits_1(self, capsys, tmp_path):
        assert main(["trace-report", str(tmp_path / "nope.jsonl")]) == 1
        assert "trace file not found" in capsys.readouterr().err


class TestTraceCommand:
    """`sfc-repro trace`: materialize a trace spec to a columnar IR file."""

    PARAMS = (
        '{"n": 8, "scheme_a": "ho", "scheme_b": "ho", "scheme_c": "ho",'
        ' "elem_bytes": 8}'
    )

    def test_materialize_to_output(self, capsys, tmp_path):
        out = tmp_path / "m.ir"
        assert main(["trace", "--kind", "matmul", "--params", self.PARAMS,
                     "--output", str(out)]) == 0
        text = capsys.readouterr().out
        assert out.exists()
        assert str(out) in text
        assert "accesses" in text and "segments" in text
        assert "compression" in text
        assert "checksums     OK" in text

    def test_materialize_into_cache_twice(self, capsys, tmp_path):
        args = ["trace", "--kind", "synthetic",
                "--params", '{"variant": "sequential", "n_accesses": 512}',
                "--cache-dir", str(tmp_path)]
        assert main(args) == 0
        first = capsys.readouterr().out
        assert main(args) == 0  # second run is a cache hit
        assert capsys.readouterr().out == first

    def test_query_kind(self, capsys, tmp_path):
        params = ('{"grid_side": 4, "tile_side": 4, "workload": "bbox",'
                  ' "n_queries": 3, "seed": 0, "stream_line_bytes": 64}')
        assert main(["trace", "--kind", "query", "--params", params,
                     "--cache-dir", str(tmp_path)]) == 0
        assert "query" in capsys.readouterr().out

    def test_invalid_json_exits_1(self, capsys, tmp_path):
        assert main(["trace", "--kind", "matmul", "--params", "{nope",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "not valid JSON" in capsys.readouterr().err

    def test_non_object_params_exits_1(self, capsys, tmp_path):
        assert main(["trace", "--kind", "matmul", "--params", "[1]",
                     "--cache-dir", str(tmp_path)]) == 1
        assert "JSON object" in capsys.readouterr().err

    def test_missing_parameter_exits_1(self, capsys, tmp_path):
        assert main(["trace", "--kind", "matmul", "--params", '{"n": 8}',
                     "--cache-dir", str(tmp_path)]) == 1
        assert "missing parameter" in capsys.readouterr().err

    def test_unexpected_parameter_exits_1(self, capsys, tmp_path):
        assert main(["trace", "--kind", "synthetic",
                     "--params", '{"variant": "sequential", "bogus": 1}',
                     "--cache-dir", str(tmp_path)]) == 1
        assert "sfc-repro: error:" in capsys.readouterr().err

    def test_unknown_kind_rejected_by_parser(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["trace", "--kind", "bogus",
                                       "--params", "{}"])

    def test_studies_accept_trace_cache(self, capsys, tmp_path):
        assert main(["mrc", "--n", "16",
                     "--trace-cache", str(tmp_path)]) == 0
        assert "RM" in capsys.readouterr().out
        assert any(tmp_path.iterdir())  # the study populated the cache


class TestErrorHandling:
    """ReproError -> exit 1; anything else escaping -> exit 2."""

    def test_bad_thread_config_exits_1(self, capsys):
        assert main(["predict", "--threads", "3x"]) == 1
        err = capsys.readouterr().err
        assert err.startswith("sfc-repro: error:")

    def test_bad_governor_exits_1(self, capsys):
        assert main(["predict", "--frequency", "performance"]) == 1
        assert "sfc-repro: error:" in capsys.readouterr().err

    def test_bad_scheme_is_unexpected_exits_2(self, capsys):
        # The curve modules raise plain ValueError for unknown schemes —
        # outside the ReproError taxonomy, so the CLI reports it as
        # unexpected.
        assert main(["predict", "--scheme", "zz"]) == 2
        err = capsys.readouterr().err
        assert "unexpected error: ValueError" in err

    def test_resume_without_checkpoint_exits_1(self, capsys):
        assert main(["mrc", "--resume"]) == 1
        assert "--checkpoint" in capsys.readouterr().err

    def test_debug_reraises_repro_error(self):
        from repro.errors import ReproError

        with pytest.raises(ReproError):
            main(["--debug", "predict", "--threads", "3x"])

    def test_debug_reraises_unexpected_error(self):
        with pytest.raises(ValueError):
            main(["--debug", "predict", "--scheme", "zz"])
