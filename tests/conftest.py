"""Shared test infrastructure: golden-file fixture, Hypothesis profiles.

``--update-golden`` regenerates the committed artifacts under
``tests/golden/`` instead of comparing against them::

    PYTHONPATH=src python -m pytest tests/golden --update-golden

Hypothesis (optional dependency) gets two registered profiles: ``dev``
(default) and ``ci`` (fixed seed via ``derandomize`` so CI failures
reproduce).  Select with ``HYPOTHESIS_PROFILE=ci``.
"""

import json
import math
import os
from pathlib import Path

import pytest

GOLDEN_DIR = Path(__file__).parent / "golden" / "data"

#: Relative tolerance for golden float comparisons: loose enough to ride
#: out last-bit libm/platform drift, tight enough that any real change in
#: simulated counts or model outputs fails loudly.
GOLDEN_RTOL = 1e-9

try:
    from hypothesis import settings

    settings.register_profile("dev", max_examples=100)
    settings.register_profile(
        "ci", max_examples=200, derandomize=True, print_blob=True
    )
    settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "dev"))
except ImportError:  # pragma: no cover - hypothesis is optional
    pass


def pytest_addoption(parser):
    parser.addoption(
        "--update-golden",
        action="store_true",
        default=False,
        help="rewrite tests/golden/data/*.json from the current outputs "
        "instead of comparing against them",
    )


def _diff(path, golden, got, rtol):
    """First difference between ``golden`` and ``got``, or None."""
    if isinstance(golden, dict) and isinstance(got, dict):
        if sorted(golden) != sorted(got):
            return f"{path}: keys {sorted(golden)} != {sorted(got)}"
        for k in golden:
            d = _diff(f"{path}.{k}", golden[k], got[k], rtol)
            if d:
                return d
        return None
    if isinstance(golden, list) and isinstance(got, list):
        if len(golden) != len(got):
            return f"{path}: length {len(golden)} != {len(got)}"
        for i, (a, b) in enumerate(zip(golden, got)):
            d = _diff(f"{path}[{i}]", a, b, rtol)
            if d:
                return d
        return None
    if isinstance(golden, float) or isinstance(got, float):
        a, b = float(golden), float(got)
        if math.isclose(a, b, rel_tol=rtol, abs_tol=rtol):
            return None
        return f"{path}: {a!r} != {b!r} (rel_tol={rtol})"
    if golden != got:
        return f"{path}: {golden!r} != {got!r}"
    return None


class GoldenChecker:
    """Compare a payload against a committed golden JSON artifact.

    Integers and strings must match exactly; floats within
    :data:`GOLDEN_RTOL`.  With ``--update-golden`` the artifact is
    (re)written and the test passes.
    """

    def __init__(self, update: bool):
        self.update = update

    def check(self, name: str, payload, rtol: float = GOLDEN_RTOL) -> None:
        path = GOLDEN_DIR / f"{name}.json"
        # Round-trip through JSON so tuples/ints normalize identically on
        # both sides of the comparison.
        payload = json.loads(json.dumps(payload, sort_keys=True))
        if self.update:
            path.parent.mkdir(parents=True, exist_ok=True)
            path.write_text(
                json.dumps(payload, indent=2, sort_keys=True) + "\n"
            )
            return
        if not path.exists():
            pytest.fail(
                f"golden artifact {path} missing — generate it with "
                f"--update-golden and commit it"
            )
        golden = json.loads(path.read_text())
        diff = _diff(name, golden, payload, rtol)
        if diff:
            pytest.fail(
                f"golden mismatch for {name}: {diff}\n"
                f"(if the change is intentional, regenerate with "
                f"--update-golden)"
            )


@pytest.fixture
def golden(request):
    return GoldenChecker(request.config.getoption("--update-golden"))
