"""The churn proof (ISSUE 10 acceptance): one storm, every guarantee.

64 seeded concurrent advise requests (drawn from 12 unique workloads)
against a 2-worker service whose fault plan crashes one worker's first
batch.  A single test asserts the full contract:

* 64 well-formed responses, zero connection errors;
* at least one response is a marked analytic fallback
  (``degraded: true``) — the crashed batch;
* every response answers *its* request (canonical echo match, no
  cross-request bleed);
* coalescing holds: strictly fewer evaluations than requests;
* the service stays healthy (replacement worker alive) and shutdown
  leaks zero child processes.
"""

import multiprocessing
import random
from concurrent.futures import ThreadPoolExecutor

from repro.robust import FaultPlan

N_REQUESTS = 64
SEED = 1107


def _unique_workloads():
    """Twelve unique advise documents, each fanning to >= 4 points."""
    docs = []
    for schemes in (["rm", "mo"], ["mo", "ho"], ["rm", "ho"], ["rm", "mo", "ho"]):
        for size_exp in (8, 9, 10):
            docs.append(
                {
                    "schemes": schemes,
                    "size_exp": size_exp,
                    "frequencies": [1.8, 2.6],
                    "refine": "sweep",
                }
            )
    return docs


class TestChurn:
    def test_storm_with_worker_crash_holds_every_guarantee(
        self, serve_factory
    ):
        service, client = serve_factory(
            workers=2,
            fault_plan=FaultPlan.single("crash", worker=0, step=0),
            hang_timeout_s=10.0,
            queue_limit=N_REQUESTS,
        )
        unique = _unique_workloads()
        rng = random.Random(SEED)
        docs = [dict(rng.choice(unique)) for _ in range(N_REQUESTS)]

        with ThreadPoolExecutor(max_workers=N_REQUESTS) as pool:
            futures = [pool.submit(client.advise, doc) for doc in docs]
            responses = [f.result(timeout=120) for f in futures]

        # 64 well-formed responses, zero connection errors (a transport
        # failure would have raised out of f.result()).
        assert len(responses) == N_REQUESTS
        degraded = 0
        for doc, (status, headers, body) in zip(docs, responses):
            assert status == 200
            assert headers["x-trace-id"] == body["trace_id"]
            advice = body["advice"]
            # No cross-request bleed: the echoed canonical request is
            # *this* request, and the curves cover exactly its schemes.
            assert advice["request"]["size_exp"] == doc["size_exp"]
            assert advice["request"]["schemes"] == sorted(set(doc["schemes"]))
            assert sorted(advice["curves"]) == sorted(set(doc["schemes"]))
            for scheme in doc["schemes"]:
                assert len(advice["curves"][scheme]["seconds"]) == 2
            if body["degraded"]:
                degraded += 1
                assert body["degraded_reason"] in (
                    "worker_crash",
                    "worker_hang",
                )

        # The crashed batch produced at least one marked fallback.
        assert degraded >= 1

        # Coalescing: strictly fewer evaluations than requests (at most
        # one per unique workload).
        evaluations = service.state.metrics.counter_value("serve.evaluations")
        assert 0 < evaluations <= len(unique) < N_REQUESTS

        # The service came out of the storm healthy: the dead worker was
        # replaced (fresh id), both slots alive, nothing still queued.
        status, _, health = client.healthz()
        assert status == 200
        assert health["workers"]["alive"] == 2
        assert health["workers"]["respawns"] >= 1
        assert health["active_requests"] == 0

        # Zero leaked children: the pool's own inventory must match two
        # live replacements, and nothing else from this test survives
        # shutdown (serve_factory's teardown re-asserts child_pids()).
        assert len(service.pool.child_pids()) == 2
        pool_pids = set(service.pool.child_pids())
        stray = [
            p.pid
            for p in multiprocessing.active_children()
            if p.pid not in pool_pids
        ]
        assert stray == []
