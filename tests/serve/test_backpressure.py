"""Backpressure: bounded admission (429) and per-request deadlines (504).

Slowness is injected deterministically with ``slow`` fault specs, so
"the queue is full" and "the deadline fired" are arranged states, not
races: the in-flight request is provably still evaluating when the
probe requests arrive.
"""

import time
from concurrent.futures import ThreadPoolExecutor

from repro.robust import FaultPlan, FaultSpec

REQ = {
    "schemes": ["ho", "mo"],
    "frequencies": [1.8, 2.6],
    "size_exp": 10,
    "refine": "sweep",
}


def _slow_plan(points: int = 8, delay_s: float = 0.4) -> FaultPlan:
    """Slow every one of worker 0's first ``points`` steps."""
    return FaultPlan(
        specs=tuple(
            FaultSpec("slow", worker=0, step=s, delay_s=delay_s)
            for s in range(points)
        )
    )


class TestAdmissionQueue:
    def test_queue_full_is_429_with_retry_after(self, serve_factory):
        service, client = serve_factory(
            workers=1,
            fault_plan=_slow_plan(),
            hang_timeout_s=30.0,
            queue_limit=1,
            retry_after_s=2.0,
        )
        with ThreadPoolExecutor(max_workers=1) as pool:
            occupant = pool.submit(client.advise, dict(REQ))
            time.sleep(0.3)  # occupant is mid-batch (>=1.6s of slow points)
            status, headers, body = client.advise(
                {**REQ, "size_exp": 9}
            )
            assert status == 429
            assert headers["retry-after"] == "2"
            assert body["error"]["type"] == "AdmissionError"
            assert body["error"]["retry_after_s"] == 2.0
            occ_status, _, occ_body = occupant.result()
        assert occ_status == 200
        assert occ_body["degraded"] is False
        assert service.state.metrics.counter_value(
            "serve.rejected", reason="queue_full"
        ) == 1

    def test_admission_frees_after_completion(self, serve_factory):
        _, client = serve_factory(workers=0, queue_limit=1)
        for _ in range(3):
            status, _, _ = client.advise({**REQ, "refine": "analytic"})
            assert status == 200


class TestDeadlines:
    def test_deadline_exceeded_is_504_with_degraded_fallback_body(
        self, serve_factory
    ):
        service, client = serve_factory(
            workers=1,
            fault_plan=_slow_plan(),
            hang_timeout_s=30.0,
            queue_limit=8,
        )
        status, _, body = client.advise({**REQ, "deadline_s": 0.2})
        assert status == 504
        assert body["degraded"] is True
        assert body["degraded_reason"] == "deadline"
        # The fallback body is a complete analytic answer, not an error.
        advice = body["advice"]
        assert sorted(advice["curves"]) == ["ho", "mo"]
        assert advice["recommendation"]["scheme"] in ("ho", "mo")
        assert service.state.metrics.counter_value(
            "serve.deadline_timeouts"
        ) == 1
        assert service.state.metrics.counter_value(
            "serve.degraded", reason="deadline"
        ) == 1

    def test_timed_out_waiter_does_not_kill_the_shared_job(self, serve_factory):
        # Two waiters on one job; the impatient one times out at 0.2s and
        # degrades, the patient one rides the job to its real completion.
        service, client = serve_factory(
            workers=1,
            fault_plan=_slow_plan(),
            hang_timeout_s=30.0,
            queue_limit=8,
        )
        with ThreadPoolExecutor(max_workers=2) as pool:
            patient = pool.submit(client.advise, dict(REQ))
            time.sleep(0.3)
            impatient = pool.submit(
                client.advise, {**REQ, "deadline_s": 0.2}
            )
            imp_status, _, imp_body = impatient.result()
            pat_status, _, pat_body = patient.result()
        assert imp_status == 504
        assert imp_body["degraded"] is True
        assert pat_status == 200
        assert pat_body["degraded"] is False

    def test_server_default_deadline_applies(self, serve_factory):
        _, client = serve_factory(
            workers=1,
            fault_plan=_slow_plan(),
            hang_timeout_s=30.0,
            default_deadline_s=0.2,
        )
        status, _, body = client.advise(dict(REQ))
        assert status == 504
        assert body["degraded_reason"] == "deadline"
        assert body["advice"]["request"]["deadline_s"] == 0.2
