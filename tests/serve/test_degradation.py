"""Graceful degradation: worker faults degrade one request, not the service.

Fault injection reuses the deterministic :class:`FaultPlan` machinery:
crash/hang/transient/corrupt faults address a specific worker id and
step, so "the first batch on worker 0 dies" is a scheduled event.  After
every fault the service must (a) answer the affected request with a
marked analytic fallback, (b) keep serving subsequent requests cleanly
on a respawned worker, and (c) leak nothing at shutdown (asserted by the
``serve_factory`` teardown for every test in this tree).
"""

import pytest

from repro.robust import FaultPlan

REQ = {
    "schemes": ["ho", "mo"],
    "frequencies": [1.8, 2.6],
    "size_exp": 10,
    "refine": "sweep",
}


class TestWorkerFaults:
    def test_crash_degrades_request_and_service_keeps_serving(
        self, serve_factory
    ):
        service, client = serve_factory(
            workers=1,
            fault_plan=FaultPlan.single("crash", worker=0, step=1),
            hang_timeout_s=10.0,
        )
        status, _, body = client.advise(dict(REQ))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "worker_crash"
        assert sorted(body["advice"]["curves"]) == ["ho", "mo"]
        # The replacement worker carries a fresh id the plan does not
        # address: the next request refines cleanly.
        status, _, body = client.advise({**REQ, "size_exp": 9})
        assert status == 200
        assert body["degraded"] is False
        _, _, health = client.healthz()
        assert health["workers"] == {
            "configured": 1,
            "alive": 1,
            "respawns": 1,
        }

    def test_hang_is_detected_and_degrades(self, serve_factory):
        service, client = serve_factory(
            workers=1,
            fault_plan=FaultPlan.single("hang", worker=0, step=0),
            hang_timeout_s=0.5,
        )
        status, _, body = client.advise(dict(REQ))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "worker_hang"
        assert service.state.metrics.counter_value(
            "serve.degraded", reason="worker_hang"
        ) == 1
        status, _, body = client.advise({**REQ, "size_exp": 9})
        assert status == 200
        assert body["degraded"] is False

    def test_transient_fault_degrades_without_killing_worker(
        self, serve_factory
    ):
        service, client = serve_factory(
            workers=1,
            fault_plan=FaultPlan.single("transient", worker=0, step=1),
            hang_timeout_s=10.0,
        )
        status, _, body = client.advise(dict(REQ))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "worker_crash"
        # A raised exception proves the worker loop is intact: no respawn.
        _, _, health = client.healthz()
        assert health["workers"]["respawns"] == 0
        assert health["workers"]["alive"] == 1

    def test_corrupt_payload_is_rejected_and_degrades(self, serve_factory):
        service, client = serve_factory(
            workers=1,
            fault_plan=FaultPlan.single("corrupt", worker=0, step=2),
            hang_timeout_s=10.0,
        )
        status, _, body = client.advise(dict(REQ))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "worker_crash"


class TestRefineModes:
    def test_sweep_without_workers_degrades_with_no_workers_reason(
        self, serve_factory
    ):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise(dict(REQ))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "no_workers"

    def test_auto_without_workers_is_not_degraded(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise({**REQ, "refine": "auto"})
        assert status == 200
        assert body["degraded"] is False

    def test_analytic_never_touches_the_pool(self, serve_factory):
        # A crash-on-first-step plan would kill any pooled evaluation;
        # refine=analytic must not trigger it.
        _, client = serve_factory(
            workers=1,
            fault_plan=FaultPlan.single("crash", worker=0, step=0),
            hang_timeout_s=10.0,
        )
        status, _, body = client.advise({**REQ, "refine": "analytic"})
        assert status == 200
        assert body["degraded"] is False
        _, _, health = client.healthz()
        assert health["workers"]["respawns"] == 0

    def test_analytic_refine_of_sampled_measure_is_marked_degraded(
        self, serve_factory
    ):
        # Analytic numbers answering a sampled-measure request are model
        # stand-ins whatever path produced them: the response must say
        # so, and the sampled tier must not be poisoned (a later sampled
        # request re-evaluates instead of reading mislabeled model data).
        service, client = serve_factory(workers=0)
        doc = {**REQ, "measure": "sampled", "refine": "analytic"}
        status, _, body = client.advise(dict(doc))
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "analytic_fallback"
        evals = service.state.metrics.counter_value("serve.evaluations")
        _, _, again = client.advise(dict(doc))
        assert again["degraded"] is True
        assert (
            service.state.metrics.counter_value("serve.evaluations")
            == evals + 1
        )

    def test_auto_refine_of_sampled_measure_without_pool_is_degraded(
        self, serve_factory
    ):
        # The default workers=0 config resolves refine="auto" to the
        # analytic path; for a sampled measure that is a stand-in too.
        _, client = serve_factory(workers=0)
        status, _, body = client.advise(
            {**REQ, "measure": "sampled", "refine": "auto"}
        )
        assert status == 200
        assert body["degraded"] is True
        assert body["degraded_reason"] == "analytic_fallback"

    def test_analytic_refine_of_model_measure_is_not_degraded(
        self, serve_factory
    ):
        # For measure="model" the analytic model IS the answer.
        _, client = serve_factory(workers=0)
        status, _, body = client.advise({**REQ, "refine": "analytic"})
        assert status == 200
        assert body["degraded"] is False
        assert body["degraded_reason"] is None

    def test_degraded_sampled_results_are_not_stored_as_sampled(
        self, serve_factory
    ):
        # A degraded "sampled" answer is analytic stand-in data; a later
        # sampled request must re-evaluate, not read poisoned warm state.
        service, client = serve_factory(workers=0)
        _, _, first = client.advise({**REQ, "measure": "sampled"})
        assert first["degraded_reason"] == "no_workers"
        evals_before = service.state.metrics.counter_value("serve.evaluations")
        _, _, second = client.advise({**REQ, "measure": "sampled"})
        assert (
            service.state.metrics.counter_value("serve.evaluations")
            == evals_before + 1
        )


class TestWarmStateRestart:
    def test_restarted_service_reboots_warm_from_journal(
        self, serve_factory, tmp_path
    ):
        state_dir = tmp_path / "state"
        first, client = serve_factory(workers=0, state_dir=state_dir)
        client.advise({**REQ, "refine": "auto"})
        assert (state_dir / "serve_warm.jsonl").exists()

        second, client2 = serve_factory(workers=0, state_dir=state_dir)
        assert second.state.warm_restored == 4
        status, _, body = client2.advise({**REQ, "refine": "auto"})
        assert status == 200
        # Every point came back from the journal: zero evaluations.
        assert second.state.metrics.counter_value("serve.evaluations") == 0
        assert second.state.metrics.counter_value("serve.memo_hits") == 1

    def test_torn_journal_tail_is_tolerated(self, serve_factory, tmp_path):
        state_dir = tmp_path / "state"
        first, client = serve_factory(workers=0, state_dir=state_dir)
        client.advise({**REQ, "refine": "auto"})
        journal = state_dir / "serve_warm.jsonl"
        # Tear the last record mid-line, as a crashed writer would.
        torn = journal.read_bytes()[:-20]
        journal.write_bytes(torn)

        second, client2 = serve_factory(workers=0, state_dir=state_dir)
        assert second.state.warm_restored == 3
        assert second.state.warm_dropped == 1
        status, _, body = client2.advise({**REQ, "refine": "auto"})
        assert status == 200
        assert body["degraded"] is False

    def test_recalibrated_model_discards_stale_journal(
        self, serve_factory, tmp_path
    ):
        from repro.sim.analytic import PerformanceModel

        state_dir = tmp_path / "state"
        first, client = serve_factory(workers=0, state_dir=state_dir)
        client.advise({**REQ, "refine": "auto"})
        assert first.state.warm_size == 4

        recalibrated = PerformanceModel(overlap_residual=0.3)
        second, _ = serve_factory(
            workers=0, model=recalibrated, state_dir=state_dir
        )
        assert second.state.fingerprint != first.state.fingerprint
        assert second.state.warm_restored == 0
