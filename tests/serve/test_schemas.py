"""Unit tests for advise-request validation and canonicalization."""

import pytest

from repro.errors import ValidationError
from repro.serve.schemas import (
    AdviseRequest,
    canonical_frequencies,
    canonical_schemes,
    request_key,
    validate_advise_request,
)


def _validate(doc, **kwargs):
    return validate_advise_request(doc, **kwargs)


def _rejection_path(doc, **kwargs) -> str:
    with pytest.raises(ValidationError) as exc_info:
        validate_advise_request(doc, **kwargs)
    return exc_info.value.path


class TestDefaultsAndCanonicalForm:
    def test_empty_document_fills_every_default(self):
        req = _validate({})
        assert req.kernel == "matmul"
        assert req.size_exp == 10
        assert req.schemes == ("ho", "mo", "rm")
        assert req.placement == "8s"
        assert req.measure == "model"
        assert req.refine == "auto"
        assert req.objective == "energy"
        assert req.deadline_s is None
        assert len(req.frequencies) > 0

    def test_canonical_round_trip_is_identity(self):
        req = _validate(
            {"schemes": ["mo", "ho", "mo"], "frequencies": [2.6, "ondemand", 1.8]}
        )
        assert req.schemes == ("ho", "mo")
        assert req.frequencies == (1.8, 2.6, "ondemand")
        assert _validate(req.to_dict()) == req

    def test_configs_cross_schemes_and_frequencies(self):
        req = _validate({"schemes": ["ho", "mo"], "frequencies": [1.8, 2.6]})
        keys = [c.key for c in req.configs]
        assert len(keys) == 4 == len(set(keys))

    def test_ints_accepted_as_ghz(self):
        req = _validate({"frequencies": [2]})
        assert req.frequencies == (2.0,)


class TestRejectionPaths:
    @pytest.mark.parametrize(
        ("doc", "path"),
        [
            ([1], "$"),
            ("x", "$"),
            ({"bogus": 1}, "bogus"),
            ({"kernel": "fft"}, "kernel"),
            ({"kernel": 7}, "kernel"),
            ({"size_exp": "big"}, "size_exp"),
            ({"size_exp": True}, "size_exp"),
            ({"size_exp": 99}, "size_exp"),
            ({"schemes": "mo"}, "schemes"),
            ({"schemes": []}, "schemes"),
            ({"schemes": ["mo", 3]}, "schemes[1]"),
            ({"schemes": ["mo", "zorder"]}, "schemes[1]"),
            ({"placement": "9q"}, "placement"),
            ({"placement": 8}, "placement"),
            ({"frequencies": 2.6}, "frequencies"),
            ({"frequencies": []}, "frequencies"),
            ({"frequencies": ["performance"]}, "frequencies[0]"),
            ({"frequencies": [1.8, None]}, "frequencies[1]"),
            ({"frequencies": [99.0]}, "frequencies[0]"),
            ({"measure": "hardware"}, "measure"),
            ({"refine": "never"}, "refine"),
            ({"objective": "power"}, "objective"),
            ({"deadline_s": "fast"}, "deadline_s"),
            ({"deadline_s": 0}, "deadline_s"),
            ({"deadline_s": -1}, "deadline_s"),
        ],
    )
    def test_every_rejection_carries_its_field_path(self, doc, path):
        assert _rejection_path(doc) == path

    def test_known_schemes_registry_gates_candidates(self):
        assert _validate({"schemes": ["mo"]}, known_schemes=("mo",))
        assert _rejection_path(
            {"schemes": ["rm"]}, known_schemes=("mo",)
        ) == "schemes[0]"

    def test_deadline_capped_at_service_ceiling(self):
        req = _validate({"deadline_s": 120.0}, max_deadline_s=30.0)
        assert req.deadline_s == 30.0
        req = _validate({"deadline_s": 5.0}, max_deadline_s=30.0)
        assert req.deadline_s == 5.0


class TestRequestKey:
    def test_scheme_order_does_not_split_keys(self):
        a = _validate({"schemes": ["ho", "mo"]})
        b = _validate({"schemes": ["mo", "ho", "ho"]})
        assert request_key(a, "fp") == request_key(b, "fp")

    def test_frequency_order_does_not_split_keys(self):
        a = _validate({"frequencies": [1.8, 2.6, "ondemand"]})
        b = _validate({"frequencies": ["ondemand", 2.6, 1.8, 2.6]})
        assert request_key(a, "fp") == request_key(b, "fp")

    def test_calibration_fingerprint_is_part_of_the_key(self):
        req = _validate({})
        assert request_key(req, "fp-a") != request_key(req, "fp-b")

    def test_execution_hints_are_excluded(self):
        base = _validate({})
        with_hints = _validate({"deadline_s": 2.0, "refine": "analytic"})
        assert request_key(base, "fp") == request_key(with_hints, "fp")

    def test_refine_splits_keys_for_non_model_measures(self):
        # Under measure="sampled" refine decides the evaluation semantics
        # (pool-sampled vs analytic stand-in): a sweep request must not
        # coalesce onto a concurrent analytic job, or vice versa.
        sweep = _validate({"measure": "sampled", "refine": "sweep"})
        analytic = _validate({"measure": "sampled", "refine": "analytic"})
        assert request_key(sweep, "fp") != request_key(analytic, "fp")

    def test_answer_shaping_fields_are_included(self):
        assert request_key(_validate({}), "fp") != request_key(
            _validate({"objective": "edp"}), "fp"
        )
        assert request_key(_validate({}), "fp") != request_key(
            _validate({"size_exp": 11}), "fp"
        )


class TestCanonicalHelpers:
    def test_canonical_schemes_sorts_and_dedupes(self):
        assert canonical_schemes(["mo", "ho", "mo"]) == ("ho", "mo")

    def test_canonical_frequencies_numeric_then_governors(self):
        assert canonical_frequencies(["ondemand", 2.6, 1.8, 2.6]) == (
            1.8,
            2.6,
            "ondemand",
        )

    def test_to_dict_and_back_preserves_frozen_dataclass(self):
        req = AdviseRequest(
            kernel="matmul",
            size_exp=10,
            schemes=("ho",),
            placement="8s",
            frequencies=(1.8,),
            measure="model",
            refine="auto",
            objective="energy",
            deadline_s=None,
        )
        assert validate_advise_request(req.to_dict()) == req
