"""Black-box HTTP contract of the advisor service.

Every test here speaks real HTTP against an in-process service on an
ephemeral port: happy path, the typed rejection bodies, the protocol
edges (404/405/413, malformed framing) and the shapes of ``/healthz``
and ``/metrics``.
"""

import json

from repro.serve.schemas import SERVE_SCHEMA_VERSION

REQ = {"schemes": ["ho", "mo"], "frequencies": [1.8, 2.6], "size_exp": 10}


def _raw_request(port, blob):
    """Send raw bytes on a fresh connection; return everything received."""
    import socket

    with socket.create_connection(("127.0.0.1", port), timeout=60) as sock:
        sock.sendall(blob)
        sock.shutdown(socket.SHUT_WR)
        chunks = []
        while True:
            data = sock.recv(65536)
            if not data:
                break
            chunks.append(data)
    return b"".join(chunks)


class TestAdviseHappyPath:
    def test_advise_returns_curves_and_recommendation(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, headers, body = client.advise(REQ)
        assert status == 200
        assert headers["content-type"] == "application/json"
        assert body["degraded"] is False
        assert body["degraded_reason"] is None
        advice = body["advice"]
        assert advice["schema_version"] == SERVE_SCHEMA_VERSION
        # Canonical echo: scheme set sorted, frequencies ascending.
        assert advice["request"]["schemes"] == ["ho", "mo"]
        assert advice["request"]["frequencies"] == [1.8, 2.6]
        assert sorted(advice["curves"]) == ["ho", "mo"]
        for curve in advice["curves"].values():
            for series in (
                "frequencies", "seconds", "freq_ghz", "llc_misses",
                "package_j", "pp0_j", "dram_j", "total_j", "edp",
            ):
                assert len(curve[series]) == 2
        rec = advice["recommendation"]
        assert rec["scheme"] in ("ho", "mo")
        assert rec["objective"] == "energy"
        assert rec["objective_value"] > 0

    def test_recommendation_is_argmin_of_objective(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise({**REQ, "objective": "time"})
        assert status == 200
        advice = body["advice"]
        best = min(
            min(c["seconds"]) for c in advice["curves"].values()
        )
        assert advice["recommendation"]["seconds"] == best

    def test_trace_id_header_present_and_echoed(self, serve_factory):
        _, client = serve_factory(workers=0)
        _, headers, body = client.advise(REQ)
        assert headers["x-trace-id"] == body["trace_id"]
        # A client-supplied trace id rides through untouched.
        status, headers, body = client.advise(
            REQ, headers={"X-Trace-Id": "client-abc"}
        )
        assert status == 200
        assert headers["x-trace-id"] == "client-abc"
        assert body["trace_id"] == "client-abc"

    def test_permuted_scheme_order_gets_identical_advice(self, serve_factory):
        _, client = serve_factory(workers=0)
        _, _, a = client.advise({**REQ, "schemes": ["ho", "mo"]})
        _, _, b = client.advise({**REQ, "schemes": ["mo", "ho"]})
        assert a["advice"] == b["advice"]


class TestTypedRejections:
    def test_unknown_scheme_is_400_with_field_path(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise({**REQ, "schemes": ["ho", "zorder"]})
        assert status == 400
        assert body["error"]["type"] == "ValidationError"
        assert body["error"]["path"] == "schemes[1]"
        assert "zorder" in body["error"]["message"]

    def test_malformed_json_is_400_at_document_root(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.request(
            "POST", "/v1/advise", raw_body="{not json"
        )
        assert status == 400
        assert body["error"]["type"] == "ValidationError"
        assert body["error"]["path"] == "$"

    def test_unknown_field_is_rejected(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise({**REQ, "turbo": True})
        assert status == 400
        assert body["error"]["path"] == "turbo"

    def test_non_object_body_is_400(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.advise([1, 2, 3])
        assert status == 400
        assert body["error"]["path"] == "$"


class TestProtocolEdges:
    def test_unknown_route_is_404(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, _, body = client.request("GET", "/v2/advise")
        assert status == 404
        assert body["error"]["type"] == "NotFound"

    def test_wrong_method_is_405_with_allow(self, serve_factory):
        _, client = serve_factory(workers=0)
        status, headers, body = client.request("GET", "/v1/advise")
        assert status == 405
        assert headers["allow"] == "POST"
        status, headers, _ = client.request("POST", "/healthz", body={})
        assert status == 405
        assert headers["allow"] == "GET"

    def test_oversized_body_is_413(self, serve_factory):
        _, client = serve_factory(workers=0, max_body_bytes=256)
        big = {"schemes": ["ho"], "placement": "x" * 512}
        status, _, body = client.advise(big)
        assert status == 413
        assert body["error"]["type"] == "ProtocolError"

    def test_line_past_stream_limit_is_400_not_a_dead_task(
        self, serve_factory
    ):
        # A request line past asyncio's 64 KiB StreamReader limit makes
        # readline raise ValueError before the _MAX_LINE check runs; the
        # server must answer 400 and close, not drop the connection with
        # an unhandled task exception.
        _, client = serve_factory(workers=0)
        raw = _raw_request(
            client.port, b"GET /" + b"a" * 66000 + b" HTTP/1.1\r\n\r\n"
        )
        assert raw.startswith(b"HTTP/1.1 400 ")
        assert b"ProtocolError" in raw
        status, _, _ = client.healthz()
        assert status == 200

    def test_transfer_encoding_is_rejected_not_desynced(self, serve_factory):
        # Chunked framing is not implemented; treating the body as empty
        # would desync the keep-alive stream, so the request is refused.
        _, client = serve_factory(workers=0)
        raw = _raw_request(
            client.port,
            b"POST /v1/advise HTTP/1.1\r\n"
            b"Host: t\r\n"
            b"Transfer-Encoding: chunked\r\n"
            b"\r\n",
        )
        assert raw.startswith(b"HTTP/1.1 501 ")
        assert b"Transfer-Encoding" in raw
        status, _, _ = client.healthz()
        assert status == 200

    def test_keep_alive_serves_multiple_requests(self, serve_factory):
        import http.client

        _, client = serve_factory(workers=0)
        conn = http.client.HTTPConnection("127.0.0.1", client.port, timeout=60)
        try:
            for _ in range(3):
                conn.request("POST", "/v1/advise", body=json.dumps(REQ))
                resp = conn.getresponse()
                assert resp.status == 200
                resp.read()
        finally:
            conn.close()


class TestHealthAndMetrics:
    def test_healthz_shape(self, serve_factory):
        service, client = serve_factory(workers=0)
        status, _, body = client.healthz()
        assert status == 200
        assert body["status"] == "ok"
        assert body["fingerprint"] == service.state.fingerprint
        assert body["workers"] == {"configured": 0, "alive": 0, "respawns": 0}
        assert body["uptime_s"] >= 0
        assert body["active_requests"] == 0

    def test_metrics_snapshot_shape_and_counters(self, serve_factory):
        _, client = serve_factory(workers=0)
        client.advise(REQ)
        client.advise(REQ)
        status, _, snap = client.metrics()
        assert status == 200
        assert snap["v"] == 1
        assert set(snap) == {"v", "counters", "gauges", "histograms"}
        assert snap["counters"]["serve.admitted"] == 2
        # Identical repeat hits the warm store: one evaluation, one memo hit.
        assert snap["counters"]["serve.evaluations"] == 1
        assert snap["counters"]["serve.memo_hits"] == 1
        assert snap["counters"]["serve.http_responses{status=200}"] >= 2
        assert "serve.request_ms" in snap["histograms"]
