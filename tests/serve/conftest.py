"""Service test harness: in-process advisor instances on ephemeral ports.

``serve_factory`` boots an :class:`~repro.serve.AdvisorService` inside a
:class:`~repro.serve.ThreadedService` (its own event-loop thread, port 0
→ ephemeral) and guarantees teardown even when a test fails — the
worker-pool zero-leak property is asserted on every teardown, so any
test that leaks a child process fails loudly.

Tests talk real HTTP through :class:`HttpClient` (stdlib
``http.client``), so the request line, headers, status mapping and body
framing are all exercised black-box.
"""

from __future__ import annotations

import http.client
import json

import pytest

from repro.serve import AdvisorService, ThreadedService


class HttpClient:
    """Minimal JSON-over-HTTP helper bound to one service port."""

    def __init__(self, port: int, timeout: float = 60.0):
        self.port = port
        self.timeout = timeout

    def request(self, method, path, body=None, headers=None, raw_body=None):
        """One request; returns ``(status, headers-dict, decoded-body)``."""
        conn = http.client.HTTPConnection(
            "127.0.0.1", self.port, timeout=self.timeout
        )
        try:
            payload = raw_body
            if payload is None and body is not None:
                payload = json.dumps(body)
            conn.request(method, path, body=payload, headers=headers or {})
            resp = conn.getresponse()
            data = resp.read()
            decoded = json.loads(data) if data else None
            return resp.status, {k.lower(): v for k, v in resp.getheaders()}, decoded
        finally:
            conn.close()

    def advise(self, doc, **kwargs):
        return self.request("POST", "/v1/advise", body=doc, **kwargs)

    def healthz(self):
        return self.request("GET", "/healthz")

    def metrics(self):
        return self.request("GET", "/metrics")


@pytest.fixture
def serve_factory():
    """Boot configured advisor services; tear every one down after the test.

    Returns a callable: ``service, client = serve_factory(**kwargs)``
    with ``kwargs`` forwarded to :class:`AdvisorService`.
    """
    booted: list[tuple[AdvisorService, ThreadedService]] = []

    def boot(**kwargs):
        service = AdvisorService(**kwargs)
        threaded = ThreadedService(service).start()
        booted.append((service, threaded))
        return service, HttpClient(threaded.port)

    yield boot

    leaks = []
    for service, threaded in booted:
        threaded.stop()
        if service.pool is not None:
            leaks.extend(service.pool.child_pids())
    assert not leaks, f"service shutdown leaked child processes: {leaks}"
