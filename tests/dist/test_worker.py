"""Worker unit tests: manifest verification, claim order, fault hooks.

All in-process; multi-process churn lives in ``test_chaos.py``.
"""

import pytest

from repro.dist import DistCoordinator, DistWorker
from repro.errors import DistError
from repro.experiments.configs import full_grid
from repro.robust import FaultPlan


def grid(n=6):
    return full_grid()[:n]


def make_board(tmp_path, n=6, shard_size=2, **kw):
    return DistCoordinator(
        tmp_path / "b", configs=grid(n), shard_size=shard_size, **kw
    )


class TestJoin:
    def test_fingerprint_mismatch_refused(self, tmp_path):
        from repro.sim.analytic import PerformanceModel

        make_board(tmp_path)
        other = PerformanceModel()
        other.overlap_residual += 0.01
        with pytest.raises(DistError, match="fingerprint"):
            DistWorker(tmp_path / "b", model=other).run()

    def test_default_owner_from_worker_id(self, tmp_path):
        make_board(tmp_path)
        assert DistWorker(tmp_path / "b", worker_id=7).owner == "w7"

    def test_bad_knobs_rejected(self, tmp_path):
        make_board(tmp_path)
        with pytest.raises(DistError):
            DistWorker(tmp_path / "b", ttl_s=0.0)
        with pytest.raises(DistError):
            DistWorker(tmp_path / "b", poll_s=-1.0)


class TestClaimLoop:
    def test_single_worker_drains_in_shard_order(self, tmp_path):
        c = make_board(tmp_path)
        stats = DistWorker(tmp_path / "b").run()
        assert stats.claimed == 3 and stats.committed == 3
        assert stats.points == 6
        assert sorted(c.board.committed_ids()) == [0, 1, 2]

    def test_committed_shards_skipped(self, tmp_path):
        c = make_board(tmp_path)
        DistWorker(tmp_path / "b", worker_id=0).run()
        stats = DistWorker(tmp_path / "b", worker_id=1).run()
        assert stats.claimed == 0 and stats.committed == 0
        assert c.board.orphaned_leases() == []

    def test_leased_shard_skipped(self, tmp_path):
        c = make_board(tmp_path)
        c.board.claim(0, "someone-else")
        w = DistWorker(tmp_path / "b")
        claim = w._next_claim(committed=set())
        assert claim == (1, False)

    def test_speculative_ticket_claimed_when_no_primaries(self, tmp_path):
        c = make_board(tmp_path)
        for i in c.board.shard_ids():
            c.board.claim(i, "others")
        c.board.offer_speculative(1)
        w = DistWorker(tmp_path / "b")
        assert w._next_claim(committed=set()) == (1, True)

    def test_deadline_exits_cleanly(self, tmp_path):
        make_board(tmp_path)
        w = DistWorker(tmp_path / "b", deadline_s=0.0)
        # Freeze the clock's second reading past the deadline.
        ticks = iter([0.0, 100.0, 100.0, 100.0])
        w.clock = lambda: next(ticks)
        stats = w.run()
        assert stats.claimed == 0

    def test_shared_cache_replays_reissued_work(self, tmp_path):
        c = make_board(tmp_path)
        DistWorker(tmp_path / "b", worker_id=0).run()
        # Wipe the commits but keep the point cache: a second worker
        # re-commits every shard purely from cache hits.
        for i in c.board.shard_ids():
            c.board.evict_result(i)
        stats = DistWorker(tmp_path / "b", worker_id=1).run()
        assert stats.committed == 3
        assert stats.cache_hits == 6


class TestProtocolFaults:
    def test_lease_steal_still_commits_exactly_once(self, tmp_path):
        c = make_board(tmp_path)
        plan = FaultPlan.single("lease_steal", worker=0, step=0)
        stats = DistWorker(tmp_path / "b", worker_id=0, fault_plan=plan).run()
        assert stats.committed == 3
        results = c.run(deadline_s=30.0)
        assert len(list(results)) == 6

    def test_duplicate_commit_verified_and_discarded(self, tmp_path):
        c = make_board(tmp_path)
        # Worker 0 computes shard 0 but its publish is delayed; worker 1
        # commits the whole board first.
        plan = FaultPlan.single("delayed_rename", worker=0, step=0,
                                delay_s=0.0)
        w0 = DistWorker(tmp_path / "b", worker_id=0, fault_plan=plan)

        def hook_factory(pfault):
            inner = DistWorker._stage_hook(w0, pfault)

            def hook(tmp, final):
                # The reaper expired w0's lease during the stretched
                # publish window; w1 re-claims, computes and wins.
                c.board.release(0)
                DistWorker(tmp_path / "b", worker_id=1).run()
                if inner:
                    inner(tmp, final)

            return hook

        w0._stage_hook = hook_factory
        stats = w0.run()
        assert stats.duplicates == 1
        assert c.board.read_result(0)["owner"] == "w1"

    def test_torn_commit_spec_is_understood(self, tmp_path):
        # The real torn_commit hard-exits the process, so here we only
        # check the plan addressing; the end-to-end path runs in
        # test_chaos.py.
        plan = FaultPlan.single("torn_commit", worker=2, step=1)
        assert plan.fire(2, 1, kinds=("torn_commit",)).kind == "torn_commit"
        assert plan.fire(2, 1, kinds=("crash",)) is None

    def test_compute_and_protocol_steps_are_disjoint(self, tmp_path):
        # A crash spec at step 0 must not fire from the protocol query
        # and vice versa.
        plan = FaultPlan(specs=(
            FaultPlan.single("crash", worker=0, step=0).specs[0],
            FaultPlan.single("lease_steal", worker=0, step=0).specs[0],
        ))
        from repro.robust.faults import DIST_FAULT_KINDS, FAULT_KINDS

        assert plan.fire(0, 0, kinds=FAULT_KINDS).kind == "crash"
        assert plan.fire(0, 0, kinds=DIST_FAULT_KINDS).kind == "lease_steal"

    def test_failing_shard_released_not_poisoned(self, tmp_path):
        c = make_board(tmp_path)
        # Tamper with shard 0's spec so evaluation raises, then heal it.
        spec_path = c.board.shards_dir / "0000.json"
        good = spec_path.read_bytes()
        spec_path.write_bytes(b"{ broken")
        w = DistWorker(tmp_path / "b", worker_id=0, deadline_s=0.5)
        stats = w.run()
        assert stats.released >= 1
        assert c.board.lease_info(0) is None  # handed back, not stuck
        spec_path.write_bytes(good)
        stats = DistWorker(tmp_path / "b", worker_id=1).run()
        assert sorted(c.board.committed_ids()) == [0, 1, 2]
