"""Coordinator unit tests: sharding, journal resume, reaping, assembly.

The worker runs *in-process* here so every interleaving is explicit;
real multi-process churn lives in ``test_chaos.py``.
"""

import pytest

from repro.dist import DistCoordinator, DistWorker
from repro.errors import DistError
from repro.experiments.configs import full_grid
from repro.experiments.runner import ExperimentRunner


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


def grid(n=6):
    return full_grid()[:n]


def blob(results):
    return [(r.config.key, r.seconds, r.package_j) for r in results]


def drain(root, **kw):
    """Run one in-process worker until the board is complete."""
    return DistWorker(root, **kw).run()


class TestSharding:
    def test_shard_count_and_manifest(self, tmp_path):
        c = DistCoordinator(tmp_path / "b", configs=grid(6), shard_size=2)
        assert c.stats["shards"] == 3
        assert c.stats["points"] == 6
        keys = [k for ks in c.board.manifest["shard_keys"] for k in ks]
        assert keys == [cfg.key for cfg in grid(6)]

    def test_duplicate_configs_deduped(self, tmp_path):
        c = DistCoordinator(
            tmp_path / "b", configs=grid(4) + grid(4), shard_size=2
        )
        assert c.stats["points"] == 4

    def test_create_requires_configs(self, tmp_path):
        with pytest.raises(DistError, match="requires configs"):
            DistCoordinator(tmp_path / "b")

    def test_bad_measure_rejected(self, tmp_path):
        with pytest.raises(DistError, match="measure"):
            DistCoordinator(tmp_path / "b", configs=grid(), measure="psychic")


class TestCompletion:
    def test_single_worker_completes_and_assembles(self, tmp_path):
        root = tmp_path / "b"
        c = DistCoordinator(root, configs=grid(6), shard_size=2)
        stats = drain(root)
        assert stats.committed == 3 and stats.points == 6
        results = c.run(deadline_s=30.0)
        serial = ExperimentRunner().run_grid(grid(6))
        assert blob(results) == blob(serial)
        assert c.board.orphaned_leases() == []

    def test_result_set_refuses_while_incomplete(self, tmp_path):
        c = DistCoordinator(tmp_path / "b", configs=grid(4), shard_size=2)
        with pytest.raises(DistError, match="incomplete"):
            c.result_set()

    def test_deadline_raises(self, tmp_path):
        clock = FakeClock()

        def sleep(dt):
            clock.advance(dt)

        c = DistCoordinator(
            tmp_path / "b", configs=grid(4), shard_size=2,
            clock=clock, sleep=sleep,
        )
        with pytest.raises(DistError, match="did not complete"):
            c.run(deadline_s=5.0)


class TestResume:
    def test_restarted_coordinator_resumes_from_journal(self, tmp_path):
        root = tmp_path / "b"
        first = DistCoordinator(root, configs=grid(6), shard_size=2)
        drain(root)
        first.step()  # collects every commit into the journal
        # The first coordinator is now "killed": nothing is carried over
        # but the mount.
        second = DistCoordinator(root, configs=grid(6), resume=True)
        assert second.stats["resumed"] == 3
        results = second.run(deadline_s=30.0)
        assert blob(results) == blob(ExperimentRunner().run_grid(grid(6)))

    def test_crash_before_any_collection_still_resumes(self, tmp_path):
        root = tmp_path / "b"
        DistCoordinator(root, configs=grid(6), shard_size=2)
        drain(root)  # commits sit in results/, nothing journaled
        second = DistCoordinator(root, resume=True)
        assert second.stats["resumed"] == 0
        results = second.run(deadline_s=30.0)
        assert blob(results) == blob(ExperimentRunner().run_grid(grid(6)))
        assert second.stats["collected"] == 3

    def test_resume_verifies_grid(self, tmp_path):
        root = tmp_path / "b"
        DistCoordinator(root, configs=grid(6), shard_size=2)
        with pytest.raises(DistError, match="does not match"):
            DistCoordinator(root, configs=grid(4), resume=True)

    def test_resume_verifies_measure(self, tmp_path):
        root = tmp_path / "b"
        DistCoordinator(root, configs=grid(4), shard_size=2)
        with pytest.raises(DistError, match="measures"):
            DistCoordinator(root, resume=True, measure="sampled")

    def test_resume_verifies_fingerprint(self, tmp_path):
        from repro.sim.analytic import PerformanceModel

        root = tmp_path / "b"
        DistCoordinator(root, configs=grid(4), shard_size=2)
        other = PerformanceModel()
        other.overlap_residual += 0.01  # a recalibrated model
        with pytest.raises(DistError, match="different calibration"):
            DistCoordinator(root, resume=True, model=other)

    def test_foreign_journal_refused(self, tmp_path):
        from repro.robust import CheckpointJournal

        root = tmp_path / "b"
        c = DistCoordinator(root, configs=grid(4), shard_size=2)
        CheckpointJournal(c.board.journal_path).append(
            "board", {"sha": "not-this-board"}
        )
        with pytest.raises(DistError, match="different board"):
            DistCoordinator(root, resume=True)


class TestReaping:
    def test_stale_lease_expired_and_reissued(self, tmp_path):
        clock = FakeClock()
        root = tmp_path / "b"
        c = DistCoordinator(
            root, configs=grid(4), shard_size=2, ttl_s=5.0, clock=clock
        )
        c.board.claim(0, "dead-worker")  # claims, then dies silently
        clock.advance(6.0)
        c.step()
        assert c.stats["leases_expired"] == 1
        assert c.board.lease_info(0) is None  # claimable again

    def test_fresh_lease_left_alone(self, tmp_path):
        clock = FakeClock()
        root = tmp_path / "b"
        c = DistCoordinator(
            root, configs=grid(4), shard_size=2, ttl_s=5.0, clock=clock
        )
        board = c.board
        board.claim(0, "w0")
        board.heartbeat("w0")
        clock.advance(2.0)
        c.step()
        assert c.stats["leases_expired"] == 0
        assert board.lease_info(0)["owner"] == "w0"

    def test_straggler_gets_speculative_ticket(self, tmp_path):
        clock = FakeClock()
        root = tmp_path / "b"
        c = DistCoordinator(
            root, configs=grid(4), shard_size=2, ttl_s=60.0,
            speculate_after_s=5.0, clock=clock,
        )
        c.board.claim(0, "slow-worker")
        c.board.heartbeat("slow-worker")
        clock.advance(6.0)
        c.board.heartbeat("slow-worker")  # alive, just slow
        c.step()
        assert c.stats["speculative_offered"] == 1
        assert c.board.speculative_ids() == [0]

    def test_torn_commit_evicted_for_redo(self, tmp_path):
        root = tmp_path / "b"
        c = DistCoordinator(root, configs=grid(4), shard_size=2)
        (c.board.results_dir / "0000.json").write_bytes(b"{ torn")
        c.step()
        assert c.stats["evicted"] == 1
        assert c.board.committed_ids() == []
