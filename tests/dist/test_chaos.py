"""Distributed sweep chaos: real processes, real kills, bit-identity.

The acceptance bar for the protocol: a sweep with four workers where two
are killed mid-shard, one hangs, and the coordinator itself is killed
and restarted mid-run must still produce results bit-identical to the
serial ``run_grid`` — with zero leaked processes and zero orphaned
leases.  Faults are injected through the deterministic
:class:`~repro.robust.FaultPlan`, so every run of this file replays the
same failure schedule.
"""

import json
import multiprocessing
import time

import pytest

from repro.dist import DistCoordinator, TaskBoard
from repro.dist.worker import worker_main
from repro.errors import DistError
from repro.experiments.configs import full_grid
from repro.experiments.runner import ExperimentRunner
from repro.experiments.sweep import SweepEngine
from repro.robust import FaultPlan, FaultSpec


def grid(n=24):
    return full_grid()[:n]


def blob(results):
    return json.dumps([r.to_dict() for r in results], sort_keys=True)


def spawn_worker(root, worker_id, fault_plan=None, ttl_s=0.5, poll_s=0.02,
                 deadline_s=60.0):
    ctx = multiprocessing.get_context("spawn")
    p = ctx.Process(
        target=worker_main,
        args=(str(root), worker_id, None, fault_plan, ttl_s, poll_s,
              deadline_s, None),
        daemon=True,
    )
    p.start()
    return p


def reap(procs, grace_s=3.0):
    """Join every worker; terminate stragglers.  Returns the leak count."""
    deadline = time.monotonic() + grace_s
    for p in procs:
        p.join(timeout=max(0.1, deadline - time.monotonic()))
    leaked = [p for p in procs if p.is_alive()]
    for p in leaked:
        p.terminate()
    for p in leaked:
        p.join(timeout=5.0)
    return len([p for p in procs if p.is_alive()])


class TestChurnIdentity:
    def test_kill_hang_and_coordinator_restart(self, tmp_path):
        """The headline proof, end to end on the raw protocol.

        Four workers: w0 and w1 are hard-killed mid-shard (``os._exit``
        at their 4th and 6th point), w2 wedges forever at its 5th point,
        w3 is healthy.  The coordinator is abandoned mid-run after its
        first collections and a fresh one resumes from the journal.
        """
        configs = grid(24)
        root = tmp_path / "board"
        plan = FaultPlan(specs=(
            FaultSpec("crash", worker=0, step=3),
            FaultSpec("crash", worker=1, step=5),
            FaultSpec("hang", worker=2, step=4),
        ))
        first = DistCoordinator(
            root, configs=configs, shard_size=2, ttl_s=0.5,
            speculate_after_s=1.0, poll_s=0.02,
        )
        assert first.stats["shards"] == 12
        procs = [spawn_worker(root, i, plan) for i in range(4)]
        try:
            # Drive the first coordinator only until it has collected
            # something, then "kill" it: nothing survives but the mount.
            deadline = time.monotonic() + 30.0
            while first.stats["collected"] < 2:
                assert time.monotonic() < deadline, "no commits arrived"
                first.step()
                time.sleep(0.02)
            del first

            second = DistCoordinator(root, configs=configs, resume=True)
            assert second.stats["resumed"] >= 2
            results = second.run(deadline_s=60.0)
        finally:
            leaked = reap(procs)

        assert leaked == 0
        assert blob(results) == blob(ExperimentRunner().run_grid(configs))
        board = TaskBoard.open(root)
        assert board.orphaned_leases() == []
        # The dead workers' shards were reissued via TTL expiry.
        assert second.stats["leases_expired"] >= 1

    def test_worker_joining_late_helps(self, tmp_path):
        configs = grid(8)
        root = tmp_path / "board"
        coordinator = DistCoordinator(
            root, configs=configs, shard_size=1, ttl_s=1.0, poll_s=0.02,
        )
        procs = [spawn_worker(root, 0)]
        try:
            time.sleep(0.2)  # worker 0 is already mid-sweep
            procs.append(spawn_worker(root, 1))
            results = coordinator.run(deadline_s=60.0)
        finally:
            leaked = reap(procs)
        assert leaked == 0
        assert blob(results) == blob(ExperimentRunner().run_grid(configs))


class TestEngineDistTransport:
    def test_dist_transport_bit_identical_to_serial(self, tmp_path):
        configs = grid(12)
        engine = SweepEngine(
            workers=2, shard_size=3, transport="dist",
            dist_dir=tmp_path / "board", dist_ttl_s=1.0,
            dist_deadline_s=60.0,
        )
        results = engine.run(configs)
        assert blob(results) == blob(ExperimentRunner().run_grid(configs))
        assert TaskBoard.open(tmp_path / "board").orphaned_leases() == []
        assert engine.dist_stats["collected"] == engine.dist_stats["shards"]

    def test_crashed_workers_respawned_within_budget(self, tmp_path):
        configs = grid(12)
        plan = FaultPlan(specs=(
            FaultSpec("crash", worker=0, step=1),
            FaultSpec("crash", worker=1, step=2),
        ))
        engine = SweepEngine(
            workers=2, shard_size=2, transport="dist",
            dist_dir=tmp_path / "board", dist_ttl_s=0.5,
            dist_deadline_s=60.0, fault_plan=plan,
        )
        results = engine.run(configs)
        assert blob(results) == blob(ExperimentRunner().run_grid(configs))
        # Respawned workers carry fresh ids, so the same plan cannot
        # re-kill them: the sweep converges.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_protocol_fault_storm_still_identical(self, tmp_path):
        # Every protocol fault kind at once, spread over the fleet:
        # a stolen lease, a stopped heartbeat, a torn commit (worker
        # dies mid-publish) and a stretched publish window.
        configs = grid(12)
        plan = FaultPlan(specs=(
            FaultSpec("lease_steal", worker=0, step=0),
            FaultSpec("stale_heartbeat", worker=1, step=0, delay_s=0.3),
            FaultSpec("torn_commit", worker=0, step=2),
            FaultSpec("delayed_rename", worker=1, step=2, delay_s=0.2),
        ))
        engine = SweepEngine(
            workers=2, shard_size=2, transport="dist",
            dist_dir=tmp_path / "board", dist_ttl_s=0.5,
            dist_speculate_after_s=0.5, dist_deadline_s=60.0,
            fault_plan=plan,
        )
        results = engine.run(configs)
        assert blob(results) == blob(ExperimentRunner().run_grid(configs))
        assert TaskBoard.open(tmp_path / "board").orphaned_leases() == []
        # The torn commit was evicted and the shard redone.
        assert engine.dist_stats["evicted"] >= 1

    def test_exhausted_respawn_budget_raises(self, tmp_path):
        from repro.errors import WorkerCrashError

        # Every id the engine could possibly spawn crashes at its first
        # point, and the budget allows one respawn round: ids 0,1 die,
        # replacements 2,3 die, and the fleet is unrecoverable.
        plan = FaultPlan(specs=tuple(
            FaultSpec("crash", worker=i, step=0) for i in range(8)
        ))
        engine = SweepEngine(
            workers=2, shard_size=2, transport="dist",
            dist_dir=tmp_path / "board", dist_ttl_s=0.5,
            dist_deadline_s=60.0, fault_plan=plan, dist_respawn_budget=2,
        )
        with pytest.raises(WorkerCrashError, match="respawn budget"):
            engine.run(grid(8))
        # Nothing left running.
        deadline = time.monotonic() + 10.0
        while multiprocessing.active_children() and time.monotonic() < deadline:
            time.sleep(0.05)
        assert not multiprocessing.active_children()

    def test_dist_results_land_in_engine_cache(self, tmp_path):
        configs = grid(8)
        engine = SweepEngine(
            workers=2, shard_size=2, transport="dist",
            dist_dir=tmp_path / "board", cache_dir=tmp_path / "cache",
            dist_deadline_s=60.0,
        )
        engine.run(configs)
        # A second (local-transport) engine over the same cache dir is
        # all cache hits: the dist run seeded it.
        warm = SweepEngine(workers=1, cache_dir=tmp_path / "cache")
        warm.run(configs)
        assert warm.stats.cache_hits == len(configs)
