"""TaskBoard protocol unit tests: leases, heartbeats, commits.

Everything here is single-process with a hand-advanced clock; the
multi-process churn lives in ``test_chaos.py``.
"""

import json

import pytest

from repro.dist import BOARD_VERSION, TaskBoard, commit_sha
from repro.errors import DistError


class FakeClock:
    def __init__(self, t: float = 1000.0):
        self.t = t

    def __call__(self) -> float:
        return self.t

    def advance(self, dt: float) -> None:
        self.t += dt


SHARDS = [
    [{"scheme": "mo", "size_exp": 8, "frequency": 2.6, "thread_config": "1s"}],
    [{"scheme": "ho", "size_exp": 8, "frequency": 2.6, "thread_config": "1s"}],
    [{"scheme": "rm", "size_exp": 8, "frequency": 2.6, "thread_config": "1s"}],
]
MANIFEST = {"study": "sweep", "fingerprint": "f" * 64, "measure": "model",
            "sample_hz": 10.0, "shard_keys": [["a"], ["b"], ["c"]],
            "trace_specs": []}


def make_board(root, clock=None):
    return TaskBoard.create(
        root / "board", dict(MANIFEST), SHARDS, clock=clock or FakeClock()
    )


class TestCreateOpen:
    def test_round_trip(self, tmp_path):
        board = make_board(tmp_path)
        again = TaskBoard.open(tmp_path / "board")
        assert again.n_shards == 3
        assert again.manifest["fingerprint"] == MANIFEST["fingerprint"]
        assert board.manifest["sha"] == again.manifest["sha"]
        assert list(again.shard_ids()) == [0, 1, 2]

    def test_shard_specs_verified(self, tmp_path):
        board = make_board(tmp_path)
        assert board.load_shard(1) == SHARDS[1]
        spec_path = board.shards_dir / "0001.json"
        spec = json.loads(spec_path.read_text())
        spec["configs"][0]["scheme"] = "rm"
        spec_path.write_text(json.dumps(spec, sort_keys=True))
        with pytest.raises(DistError, match="digest"):
            board.load_shard(1)

    def test_missing_board_refuses(self, tmp_path):
        with pytest.raises(DistError, match="no task board"):
            TaskBoard.open(tmp_path / "absent")

    def test_tampered_manifest_refuses(self, tmp_path):
        board = make_board(tmp_path)
        m = json.loads(board.manifest_path.read_text())
        m["fingerprint"] = "0" * 64
        board.manifest_path.write_text(json.dumps(m, sort_keys=True))
        with pytest.raises(DistError, match="digest"):
            TaskBoard.open(tmp_path / "board")

    def test_version_skew_refuses(self, tmp_path):
        from repro.robust import payload_sha

        board = make_board(tmp_path)
        m = json.loads(board.manifest_path.read_text())
        m.pop("sha")
        m["version"] = BOARD_VERSION + 1
        m["sha"] = payload_sha("dist-board", m)
        board.manifest_path.write_text(json.dumps(m, sort_keys=True))
        with pytest.raises(DistError, match="version"):
            TaskBoard.open(tmp_path / "board")

    def test_create_twice_refuses(self, tmp_path):
        make_board(tmp_path)
        with pytest.raises(DistError, match="already exists"):
            make_board(tmp_path)


class TestLeases:
    def test_claim_is_exclusive(self, tmp_path):
        board = make_board(tmp_path)
        assert board.claim(0, "w0")
        assert not board.claim(0, "w1")
        info = board.lease_info(0)
        assert info["owner"] == "w0" and info["speculative"] is False

    def test_release_reopens_the_shard(self, tmp_path):
        board = make_board(tmp_path)
        board.claim(0, "w0")
        board.release(0)
        assert board.lease_info(0) is None
        assert board.claim(0, "w1")

    def test_speculative_lease_is_separate(self, tmp_path):
        board = make_board(tmp_path)
        assert board.claim(0, "w0")
        assert board.claim(0, "w1", speculative=True)
        assert board.lease_info(0)["owner"] == "w0"
        assert board.lease_info(0, speculative=True)["owner"] == "w1"

    def test_unreadable_lease_reads_as_ancient(self, tmp_path):
        board = make_board(tmp_path)
        (board.leases_dir / "0000.lease").write_bytes(b"\x00garbage")
        info = board.lease_info(0)
        assert info["owner"] is None and info["claimed_at"] == 0.0
        assert board.lease_stale(0, ttl_s=5.0)

    def test_orphaned_leases_listing(self, tmp_path):
        board = make_board(tmp_path)
        assert board.orphaned_leases() == []
        board.claim(1, "w0")
        board.claim(2, "w1", speculative=True)
        assert [p.name for p in board.orphaned_leases()] == [
            "0001.lease", "0002.spec",
        ]


class TestHeartbeatsAndTTL:
    def test_fresh_heartbeat_keeps_lease_alive(self, tmp_path):
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.claim(0, "w0")
        board.heartbeat("w0")
        clock.advance(4.0)
        assert not board.lease_stale(0, ttl_s=5.0)
        clock.advance(2.0)
        assert board.lease_stale(0, ttl_s=5.0)

    def test_beat_renews(self, tmp_path):
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.claim(0, "w0")
        for _ in range(5):
            clock.advance(3.0)
            board.heartbeat("w0")
        assert not board.lease_stale(0, ttl_s=5.0)

    def test_claim_then_die_before_first_beat_expires(self, tmp_path):
        clock = FakeClock()
        board = make_board(tmp_path, clock)
        board.claim(0, "w0")  # no heartbeat ever written
        clock.advance(6.0)
        assert board.lease_stale(0, ttl_s=5.0)

    def test_heartbeat_age_none_when_never_beat(self, tmp_path):
        board = make_board(tmp_path)
        assert board.heartbeat_age("ghost") is None


class TestSpeculation:
    def test_offer_is_idempotent(self, tmp_path):
        board = make_board(tmp_path)
        assert board.offer_speculative(1)
        assert not board.offer_speculative(1)
        assert board.speculative_ids() == [1]
        board.retract_speculative(1)
        assert board.speculative_ids() == []


class TestCommits:
    RESULTS = [{"config_scheme": "mo", "seconds": 1.5}]

    def test_commit_and_read(self, tmp_path):
        board = make_board(tmp_path)
        assert board.commit(0, self.RESULTS, "w0") == "committed"
        payload = board.read_result(0)
        assert payload["results"] == self.RESULTS
        assert payload["owner"] == "w0"
        assert board.committed_ids() == [0]

    def test_identical_duplicate_discarded(self, tmp_path):
        board = make_board(tmp_path)
        board.commit(0, self.RESULTS, "w0")
        assert board.commit(0, self.RESULTS, "w1") == "duplicate"
        # First committer's payload survives untouched.
        assert board.read_result(0)["owner"] == "w0"

    def test_disagreeing_duplicate_raises(self, tmp_path):
        board = make_board(tmp_path)
        board.commit(0, self.RESULTS, "w0")
        other = [{"config_scheme": "mo", "seconds": 9.9}]
        with pytest.raises(DistError, match="not deterministic"):
            board.commit(0, other, "w1")

    def test_owner_excluded_from_commit_sha(self):
        assert commit_sha(3, self.RESULTS) == commit_sha(3, self.RESULTS)
        assert commit_sha(3, self.RESULTS) != commit_sha(4, self.RESULTS)

    def test_torn_commit_reads_as_none_and_is_evicted(self, tmp_path):
        board = make_board(tmp_path)
        board.commit(0, self.RESULTS, "w0")
        path = board.results_dir / "0000.json"
        path.write_bytes(path.read_bytes()[:20])
        assert board.committed_ids() == [0]  # the file exists ...
        assert board.read_result(0) is None  # ... but it is no commit
        board.evict_result(0)
        assert board.committed_ids() == []

    def test_commit_over_torn_file_wins(self, tmp_path):
        board = make_board(tmp_path)
        (board.results_dir / "0000.json").write_bytes(b"{ torn")
        assert board.commit(0, self.RESULTS, "w0") == "committed"
        assert board.read_result(0)["results"] == self.RESULTS

    def test_no_tmp_debris_after_commit(self, tmp_path):
        board = make_board(tmp_path)
        board.commit(0, self.RESULTS, "w0")
        board.commit(0, self.RESULTS, "w1")
        assert not list(board.results_dir.glob(".*"))
