"""Curve-sorted sparse matrices."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout import CurveSparseMatrix


def random_sparse_dense(side=16, density=0.2, seed=0):
    rng = np.random.default_rng(seed)
    dense = rng.random((side, side))
    dense[rng.random((side, side)) > density] = 0.0
    return dense


class TestConstruction:
    @pytest.mark.parametrize("layout", ["rm", "mo", "ho"])
    def test_dense_roundtrip(self, layout):
        dense = random_sparse_dense()
        sp = CurveSparseMatrix.from_dense(dense, layout)
        np.testing.assert_array_equal(sp.to_dense(), dense)

    def test_nnz_and_density(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = dense[7, 7] = 1.0
        sp = CurveSparseMatrix.from_dense(dense, "mo")
        assert sp.nnz == 2
        assert sp.density == pytest.approx(2 / 64)

    def test_entries_sorted_by_curve_index(self):
        sp = CurveSparseMatrix.from_dense(random_sparse_dense(), "ho")
        assert np.all(np.diff(sp.indices.astype(np.int64)) > 0)

    def test_from_coo_sums_duplicates(self):
        sp = CurveSparseMatrix.from_coo(
            [1, 1, 2], [2, 2, 3], [1.0, 2.0, 5.0], "mo", side=8
        )
        assert sp.nnz == 2
        assert sp.to_dense()[1, 2] == pytest.approx(3.0)

    def test_from_coo_requires_side_with_code(self):
        with pytest.raises(LayoutError):
            CurveSparseMatrix.from_coo([0], [0], [1.0], "mo")

    def test_tolerance_filter(self):
        dense = np.array([[1e-9, 2.0], [0.0, -3.0]])
        sp = CurveSparseMatrix.from_dense(dense, "rm", tol=1e-6)
        assert sp.nnz == 2

    def test_rejects_unsorted(self):
        from repro.curves import get_curve

        with pytest.raises(LayoutError):
            CurveSparseMatrix(
                np.array([3, 1], dtype=np.uint64), np.ones(2), get_curve("mo", 4)
            )

    def test_rejects_out_of_range(self):
        from repro.curves import get_curve

        with pytest.raises(LayoutError):
            CurveSparseMatrix(
                np.array([16], dtype=np.uint64), np.ones(1), get_curve("mo", 4)
            )


class TestBlockSlice:
    def test_slice_covers_block_entries(self):
        dense = random_sparse_dense(side=16, seed=3)
        sp = CurveSparseMatrix.from_dense(dense, "mo")
        sl = sp.block_slice(8, 0, 8)
        ys, xs = sp.curve.decode(sp.indices[sl])
        assert np.all((ys >= 8) & (xs < 8))
        # Count matches the dense block's nonzeros.
        assert sl.stop - sl.start == np.count_nonzero(dense[8:16, 0:8])

    def test_empty_block(self):
        dense = np.zeros((8, 8))
        dense[0, 0] = 1.0
        sp = CurveSparseMatrix.from_dense(dense, "mo")
        sl = sp.block_slice(4, 4, 4)
        assert sl.start == sl.stop

    def test_rowmajor_blocks_unsupported(self):
        sp = CurveSparseMatrix.from_dense(random_sparse_dense(8, seed=4), "rm")
        with pytest.raises(LayoutError):
            sp.block_slice(0, 0, 4)


class TestKernels:
    @pytest.mark.parametrize("layout", ["rm", "mo", "ho"])
    def test_matvec(self, layout):
        dense = random_sparse_dense(seed=5)
        sp = CurveSparseMatrix.from_dense(dense, layout)
        x = np.random.default_rng(6).random(dense.shape[0])
        np.testing.assert_allclose(sp.matvec(x), dense @ x, rtol=1e-12)

    @pytest.mark.parametrize("layout", ["rm", "mo"])
    def test_matmul_dense(self, layout):
        dense = random_sparse_dense(seed=7)
        sp = CurveSparseMatrix.from_dense(dense, layout)
        b = np.random.default_rng(8).random(dense.shape)
        np.testing.assert_allclose(sp.matmul_dense(b), dense @ b, rtol=1e-12)

    def test_matvec_validates_shape(self):
        sp = CurveSparseMatrix.from_dense(random_sparse_dense(8, seed=9), "mo")
        with pytest.raises(LayoutError):
            sp.matvec(np.zeros(9))

    @settings(max_examples=20)
    @given(
        seed=st.integers(min_value=0, max_value=10**6),
        order=st.integers(min_value=1, max_value=4),
    )
    def test_matvec_property(self, seed, order):
        side = 1 << order
        dense = random_sparse_dense(side, density=0.4, seed=seed)
        sp = CurveSparseMatrix.from_dense(dense, "mo")
        x = np.random.default_rng(seed + 1).random(side)
        np.testing.assert_allclose(sp.matvec(x), dense @ x, rtol=1e-10)
