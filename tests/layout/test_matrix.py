"""CurveMatrix storage semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.curves import HilbertCurve, MortonCurve, get_curve
from repro.errors import LayoutError
from repro.layout import CurveMatrix, pad_to_pow2


@pytest.fixture
def dense8():
    return np.arange(64, dtype=np.float64).reshape(8, 8)


class TestConstruction:
    def test_from_dense_roundtrip(self, dense8):
        for code in ("rm", "cm", "mo", "ho"):
            m = CurveMatrix.from_dense(dense8, code)
            np.testing.assert_array_equal(m.to_dense(), dense8)

    def test_rm_layout_is_ravel(self, dense8):
        m = CurveMatrix.from_dense(dense8, "rm")
        np.testing.assert_array_equal(m.data, dense8.ravel())

    def test_morton_buffer_order(self, dense8):
        m = CurveMatrix.from_dense(dense8, "mo")
        # Buffer position d holds the element at decode(d).
        c = MortonCurve(8)
        ys, xs = c.traversal()
        np.testing.assert_array_equal(m.data, dense8[ys, xs])

    def test_rejects_non_square(self):
        with pytest.raises(LayoutError):
            CurveMatrix.from_dense(np.zeros((4, 8)), "rm")

    def test_rejects_mismatched_curve(self, dense8):
        with pytest.raises(LayoutError):
            CurveMatrix.from_dense(dense8, get_curve("mo", 16))

    def test_rejects_wrong_buffer_length(self):
        with pytest.raises(LayoutError):
            CurveMatrix(np.zeros(10), get_curve("rm", 4))

    def test_rejects_2d_buffer(self):
        with pytest.raises(LayoutError):
            CurveMatrix(np.zeros((4, 4)), get_curve("rm", 4))

    def test_zeros(self):
        m = CurveMatrix.zeros(8, "mo")
        assert m.side == 8 and m.dtype == np.float64
        assert not m.data.any()

    def test_random_reproducible(self):
        a = CurveMatrix.random(8, "ho", rng=np.random.default_rng(5))
        b = CurveMatrix.random(8, "ho", rng=np.random.default_rng(5))
        np.testing.assert_array_equal(a.data, b.data)

    def test_buffer_shared_not_copied(self):
        buf = np.zeros(16)
        m = CurveMatrix(buf, get_curve("rm", 4))
        m[0, 0] = 7.0
        assert buf[0] == 7.0


class TestAccess:
    def test_scalar_get_set(self, dense8):
        m = CurveMatrix.from_dense(dense8, "ho")
        assert m[3, 5] == dense8[3, 5]
        m[3, 5] = -1.0
        assert m[3, 5] == -1.0

    def test_fancy_get(self, dense8):
        m = CurveMatrix.from_dense(dense8, "mo")
        ys = np.array([0, 1, 7], dtype=np.uint64)
        xs = np.array([0, 2, 7], dtype=np.uint64)
        np.testing.assert_array_equal(m[ys, xs], dense8[ys, xs])

    def test_row_col(self, dense8):
        m = CurveMatrix.from_dense(dense8, "mo")
        np.testing.assert_array_equal(m.row(3), dense8[3])
        np.testing.assert_array_equal(m.col(5), dense8[:, 5])

    def test_block_gather(self, dense8):
        m = CurveMatrix.from_dense(dense8, "ho")
        np.testing.assert_array_equal(m.block(2, 4, 2), dense8[2:4, 4:6])

    def test_block_out_of_range(self, dense8):
        m = CurveMatrix.from_dense(dense8, "rm")
        with pytest.raises(LayoutError):
            m.block(6, 6, 4)

    def test_set_block(self, dense8):
        m = CurveMatrix.from_dense(dense8, "mo")
        patch = np.full((2, 2), -5.0)
        m.set_block(4, 4, patch)
        np.testing.assert_array_equal(m.to_dense()[4:6, 4:6], patch)

    def test_set_block_rejects_non_square(self, dense8):
        m = CurveMatrix.from_dense(dense8, "mo")
        with pytest.raises(LayoutError):
            m.set_block(0, 0, np.zeros((2, 3)))


class TestEquality:
    def test_same_layout(self, dense8):
        a = CurveMatrix.from_dense(dense8, "mo")
        b = CurveMatrix.from_dense(dense8, "mo")
        assert a == b

    def test_cross_layout(self, dense8):
        a = CurveMatrix.from_dense(dense8, "mo")
        b = CurveMatrix.from_dense(dense8, "ho")
        assert a == b

    def test_unhashable(self, dense8):
        with pytest.raises(TypeError):
            hash(CurveMatrix.from_dense(dense8, "rm"))

    def test_copy_is_deep(self, dense8):
        a = CurveMatrix.from_dense(dense8, "mo")
        b = a.copy()
        b[0, 0] = 99.0
        assert a[0, 0] != 99.0


class TestPadding:
    def test_pads_to_next_pow2(self):
        out = pad_to_pow2(np.ones((5, 3)))
        assert out.shape == (8, 8)
        assert out[:5, :3].all()
        assert out[5:, :].sum() == 0 and out[:, 3:].sum() == 0

    def test_noop_when_already_pow2(self):
        arr = np.ones((8, 8))
        assert pad_to_pow2(arr) is arr

    def test_rejects_non_2d(self):
        with pytest.raises(LayoutError):
            pad_to_pow2(np.zeros(8))

    @settings(max_examples=20)
    @given(
        rows=st.integers(min_value=1, max_value=20),
        cols=st.integers(min_value=1, max_value=20),
    )
    def test_product_preserved_on_original_block(self, rows, cols):
        rng = np.random.default_rng(rows * 100 + cols)
        a = rng.random((rows, rows))
        pa = pad_to_pow2(a)
        want = a @ a
        got = (pa @ pa)[:rows, :rows]
        np.testing.assert_allclose(got, want, rtol=1e-12)
