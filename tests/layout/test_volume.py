"""3-D Morton volumes."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout import MortonVolume


@pytest.fixture
def dense8():
    return np.arange(8**3, dtype=np.float64).reshape(8, 8, 8)


class TestConstruction:
    def test_dense_roundtrip(self, dense8):
        v = MortonVolume.from_dense(dense8)
        np.testing.assert_array_equal(v.to_dense(), dense8)

    def test_zeros(self):
        v = MortonVolume.zeros(4)
        assert v.shape == (4, 4, 4)
        assert not v.data.any()

    def test_rejects_non_cubic(self):
        with pytest.raises(LayoutError):
            MortonVolume.from_dense(np.zeros((4, 4, 8)))

    def test_rejects_non_pow2(self):
        with pytest.raises(LayoutError):
            MortonVolume.from_dense(np.zeros((3, 3, 3)))

    def test_rejects_bad_buffer(self):
        with pytest.raises(LayoutError):
            MortonVolume(np.zeros(10), 4)


class TestAccess:
    def test_scalar_get_set(self, dense8):
        v = MortonVolume.from_dense(dense8)
        assert v[3, 5, 7] == dense8[3, 5, 7]
        v[3, 5, 7] = -1.0
        assert v[3, 5, 7] == -1.0

    def test_fancy_get(self, dense8):
        v = MortonVolume.from_dense(dense8)
        z = np.array([0, 1], dtype=np.uint64)
        y = np.array([2, 3], dtype=np.uint64)
        x = np.array([4, 5], dtype=np.uint64)
        np.testing.assert_array_equal(v[z, y, x], dense8[z, y, x])

    def test_out_of_range(self, dense8):
        v = MortonVolume.from_dense(dense8)
        with pytest.raises(LayoutError):
            v[8, 0, 0]

    def test_unit_cube_order(self):
        # The 2x2x2 volume is stored in z-major binary-counting order.
        dense = np.arange(8.0).reshape(2, 2, 2)
        v = MortonVolume.from_dense(dense)
        np.testing.assert_array_equal(v.data, np.arange(8.0))


class TestSubcubes:
    def test_all_aligned_subcubes_contiguous(self, dense8):
        v = MortonVolume.from_dense(dense8)
        for size in (2, 4, 8):
            for z0 in range(0, 8, size):
                for y0 in range(0, 8, size):
                    for x0 in range(0, 8, size):
                        start, stop = v.subcube_range(z0, y0, x0, size)
                        assert stop - start == size**3

    def test_subcube_contents(self, dense8):
        v = MortonVolume.from_dense(dense8)
        np.testing.assert_array_equal(
            v.subcube(4, 0, 4, 4), dense8[4:8, 0:4, 4:8]
        )

    def test_unaligned_rejected(self, dense8):
        v = MortonVolume.from_dense(dense8)
        with pytest.raises(LayoutError):
            v.subcube_range(1, 0, 0, 4)

    def test_oversized_rejected(self, dense8):
        v = MortonVolume.from_dense(dense8)
        with pytest.raises(LayoutError):
            v.subcube_range(4, 4, 4, 8)


@settings(max_examples=10, deadline=None)
@given(
    order=st.integers(min_value=1, max_value=3),
    seed=st.integers(min_value=0, max_value=10**6),
)
def test_roundtrip_property(order, seed):
    side = 1 << order
    dense = np.random.default_rng(seed).random((side, side, side))
    np.testing.assert_array_equal(MortonVolume.from_dense(dense).to_dense(), dense)
