"""Layout conversion and permutation caching."""

import numpy as np
import pytest

from repro.curves import MortonCurve, get_curve
from repro.errors import LayoutError
from repro.layout import (
    CurveMatrix,
    clear_permutation_cache,
    conversion_permutation,
    curve_permutation,
    relayout,
)


@pytest.fixture(autouse=True)
def fresh_cache():
    clear_permutation_cache()
    yield
    clear_permutation_cache()


class TestPermutationCache:
    def test_cached_instance_reused(self):
        c = MortonCurve(16)
        p1 = curve_permutation(c)
        p2 = curve_permutation(MortonCurve(16))  # equal curve, same key
        assert p1 is p2

    def test_matches_uncached(self):
        c = MortonCurve(8)
        np.testing.assert_array_equal(curve_permutation(c), c.permutation())


class TestConversionPermutation:
    def test_identity(self):
        c = MortonCurve(8)
        g = conversion_permutation(c, c)
        np.testing.assert_array_equal(g, np.arange(64, dtype=np.uint64))

    def test_semantics(self):
        src = get_curve("mo", 8)
        dst = get_curve("ho", 8)
        dense = np.arange(64.0).reshape(8, 8)
        m_src = CurveMatrix.from_dense(dense, src)
        g = conversion_permutation(src, dst)
        m_dst = CurveMatrix(m_src.data[g], dst)
        np.testing.assert_array_equal(m_dst.to_dense(), dense)

    def test_side_mismatch(self):
        with pytest.raises(LayoutError):
            conversion_permutation(get_curve("mo", 8), get_curve("mo", 16))


class TestRelayout:
    @pytest.mark.parametrize("src,dst", [("rm", "mo"), ("mo", "ho"), ("ho", "rm"), ("rm", "brm")])
    def test_preserves_values(self, src, dst):
        dense = np.random.default_rng(0).random((16, 16))
        m = CurveMatrix.from_dense(dense, src)
        out = relayout(m, dst)
        assert out.curve.code == dst
        np.testing.assert_array_equal(out.to_dense(), dense)

    def test_same_curve_returns_copy(self):
        m = CurveMatrix.random(8, "mo", rng=np.random.default_rng(1))
        out = relayout(m, "mo")
        assert out is not m
        np.testing.assert_array_equal(out.data, m.data)

    def test_roundtrip(self):
        m = CurveMatrix.random(32, "mo", rng=np.random.default_rng(2))
        back = relayout(relayout(m, "ho"), "mo")
        np.testing.assert_array_equal(back.data, m.data)
