"""Quadrant contiguity — the tiling effect in buffer terms."""

import numpy as np
import pytest

from repro.curves import HilbertCurve, MortonCurve, RowMajorCurve
from repro.errors import LayoutError
from repro.layout import CurveMatrix, block_range, is_block_contiguous, quadrant_views


class TestBlockRange:
    def test_morton_all_aligned_blocks_contiguous(self):
        c = MortonCurve(16)
        for size in (2, 4, 8, 16):
            for y0 in range(0, 16, size):
                for x0 in range(0, 16, size):
                    start, stop = block_range(c, y0, x0, size)
                    assert stop - start == size * size

    def test_hilbert_all_aligned_blocks_contiguous(self):
        c = HilbertCurve(16)
        for size in (2, 4, 8):
            for y0 in range(0, 16, size):
                for x0 in range(0, 16, size):
                    assert is_block_contiguous(c, y0, x0, size)

    def test_rowmajor_blocks_not_contiguous(self):
        assert not is_block_contiguous(RowMajorCurve(16), 0, 0, 4)

    def test_rowmajor_full_matrix_contiguous(self):
        assert is_block_contiguous(RowMajorCurve(16), 0, 0, 16)

    def test_unaligned_rejected(self):
        with pytest.raises(LayoutError):
            block_range(MortonCurve(16), 2, 0, 4)

    def test_range_content_matches_block(self):
        c = MortonCurve(8)
        dense = np.arange(64.0).reshape(8, 8)
        m = CurveMatrix.from_dense(dense, c)
        start, stop = block_range(c, 4, 0, 4)
        segment = np.sort(m.data[start:stop])
        block = np.sort(dense[4:8, 0:4].ravel())
        np.testing.assert_array_equal(segment, block)


class TestQuadrantViews:
    def test_morton_order(self):
        m = CurveMatrix.zeros(8, "mo")
        views = quadrant_views(m)
        assert [(v.y0, v.x0) for v in views] == [(0, 0), (0, 4), (4, 0), (4, 4)]
        assert [(v.start, v.stop) for v in views] == [
            (0, 16), (16, 32), (32, 48), (48, 64)
        ]

    def test_hilbert_order_matches_table1(self):
        m = CurveMatrix.zeros(8, "ho")
        views = quadrant_views(m)
        assert [(v.y0, v.x0) for v in views] == [(0, 0), (0, 4), (4, 4), (4, 0)]

    def test_views_partition_buffer(self):
        m = CurveMatrix.zeros(16, "ho")
        views = quadrant_views(m)
        assert views[0].start == 0
        assert views[-1].stop == 256
        for v0, v1 in zip(views, views[1:]):
            assert v0.stop == v1.start

    def test_non_quadrant_curve_rejected(self):
        with pytest.raises(LayoutError):
            quadrant_views(CurveMatrix.zeros(8, "rm"))

    def test_side_one_rejected(self):
        with pytest.raises(LayoutError):
            quadrant_views(CurveMatrix.zeros(1, "mo"))
