"""Rectangular matrices via transparent padding."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import LayoutError
from repro.layout import PaddedCurveMatrix, rect_matmul


class TestPaddedCurveMatrix:
    def test_shape_and_padding(self):
        m = PaddedCurveMatrix.from_dense(np.ones((5, 12)), "mo")
        assert m.shape == (5, 12)
        assert m.padded_side == 16
        assert m.padding_overhead == pytest.approx(256 / 60)

    def test_dense_roundtrip(self):
        dense = np.random.default_rng(0).random((7, 11))
        m = PaddedCurveMatrix.from_dense(dense, "ho")
        np.testing.assert_array_equal(m.to_dense(), dense)

    def test_element_access(self):
        dense = np.random.default_rng(1).random((6, 9))
        m = PaddedCurveMatrix.from_dense(dense, "mo")
        assert m[5, 8] == dense[5, 8]
        m[5, 8] = -2.0
        assert m[5, 8] == -2.0

    def test_out_of_logical_range_rejected(self):
        m = PaddedCurveMatrix.from_dense(np.ones((5, 12)), "mo")
        with pytest.raises(LayoutError):
            m[5, 0]
        with pytest.raises(LayoutError):
            m[0, 12]

    def test_rejects_non_2d(self):
        with pytest.raises(LayoutError):
            PaddedCurveMatrix.from_dense(np.ones(5))

    def test_exact_pow2_square_no_overhead(self):
        m = PaddedCurveMatrix.from_dense(np.ones((16, 16)), "mo")
        assert m.padding_overhead == 1.0


class TestRectMatmul:
    def test_matches_reference(self):
        rng = np.random.default_rng(2)
        a = rng.random((5, 12))
        b = rng.random((12, 9))
        pa = PaddedCurveMatrix.from_dense(a, "mo")
        pb = PaddedCurveMatrix.from_dense(b, "mo")
        c = rect_matmul(pa, pb, leaf=8)
        assert c.shape == (5, 9)
        np.testing.assert_allclose(c.to_dense(), a @ b, rtol=1e-12)

    def test_shape_mismatch(self):
        pa = PaddedCurveMatrix.from_dense(np.ones((4, 6)), "mo")
        pb = PaddedCurveMatrix.from_dense(np.ones((5, 4)), "mo")
        with pytest.raises(LayoutError):
            rect_matmul(pa, pb)

    def test_padding_mismatch(self):
        pa = PaddedCurveMatrix.from_dense(np.ones((4, 20)), "mo")  # side 32
        pb = PaddedCurveMatrix.from_dense(np.ones((20, 4)), "mo")  # side 32
        pc = PaddedCurveMatrix.from_dense(np.ones((4, 4)), "mo")   # side 4
        with pytest.raises(LayoutError):
            rect_matmul(pc, pa)

    @settings(max_examples=15, deadline=None)
    @given(
        m=st.integers(min_value=1, max_value=20),
        k=st.integers(min_value=1, max_value=20),
        n=st.integers(min_value=1, max_value=20),
        seed=st.integers(min_value=0, max_value=10**6),
    )
    def test_property(self, m, k, n, seed):
        from repro.util.bits import ceil_pow2

        side = ceil_pow2(max(m, k, n))
        rng = np.random.default_rng(seed)
        a = rng.random((m, k))
        b = rng.random((k, n))
        # Pad both to the common side.
        a_sq = np.zeros((side, side)); a_sq[:m, :k] = a
        b_sq = np.zeros((side, side)); b_sq[:k, :n] = b
        pa = PaddedCurveMatrix.from_dense(a_sq, "mo")
        pa = PaddedCurveMatrix(pa.inner, m, k)
        pb = PaddedCurveMatrix.from_dense(b_sq, "mo")
        pb = PaddedCurveMatrix(pb.inner, k, n)
        c = rect_matmul(pa, pb, leaf=8)
        np.testing.assert_allclose(c.to_dense(), a @ b, rtol=1e-10, atol=1e-12)
