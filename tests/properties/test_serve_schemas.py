"""Property-based tests for the advise request schema (Hypothesis).

Two wire-contract invariants, fuzzed rather than enumerated:

* **Round-trip identity** — any accepted document validates to a
  canonical request whose ``to_dict()`` re-validates to the *same*
  request, and canonicalization is order/duplication-insensitive for
  the scheme-candidate set and the frequency list (which is also what
  keeps the coalescing key stable).
* **Typed rejection** — any document drawn from a grab-bag of
  malformed shapes is rejected with a :class:`ValidationError` carrying
  a machine-readable field path, never a bare exception.

Skips gracefully when Hypothesis is not installed (exercised by the
dedicated CI job).
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.errors import ValidationError  # noqa: E402
from repro.serve.schemas import (  # noqa: E402
    request_key,
    validate_advise_request,
)

SCHEMES = ("rm", "mo", "ho")
PLACEMENTS = ("1s", "4s", "8s", "2d", "8d", "16d")

frequencies = st.lists(
    st.one_of(
        st.floats(min_value=0.1, max_value=10.0, allow_nan=False),
        st.just("ondemand"),
    ),
    min_size=1,
    max_size=6,
)

documents = st.fixed_dictionaries(
    {},
    optional={
        "kernel": st.just("matmul"),
        "size_exp": st.integers(min_value=4, max_value=16),
        "schemes": st.lists(
            st.sampled_from(SCHEMES), min_size=1, max_size=6
        ),
        "placement": st.sampled_from(PLACEMENTS),
        "frequencies": frequencies,
        "measure": st.sampled_from(("model", "sampled")),
        "refine": st.sampled_from(("auto", "sweep", "analytic")),
        "objective": st.sampled_from(("energy", "time", "edp")),
        "deadline_s": st.floats(
            min_value=0.001, max_value=1000.0, allow_nan=False
        ),
    },
)


class TestRoundTrip:
    @given(doc=documents)
    def test_accepted_requests_reserialize_identically(self, doc):
        req = validate_advise_request(doc)
        wire = req.to_dict()
        again = validate_advise_request(wire)
        assert again == req
        assert again.to_dict() == wire

    @given(doc=documents, seed=st.randoms(use_true_random=False))
    def test_canonicalization_ignores_order_and_duplicates(self, doc, seed):
        req = validate_advise_request(doc)
        shuffled = dict(doc)
        if "schemes" in shuffled:
            shuffled["schemes"] = shuffled["schemes"] * 2
            seed.shuffle(shuffled["schemes"])
        if "frequencies" in shuffled:
            shuffled["frequencies"] = list(shuffled["frequencies"])
            seed.shuffle(shuffled["frequencies"])
        other = validate_advise_request(shuffled)
        assert other.schemes == req.schemes
        assert other.frequencies == req.frequencies
        assert request_key(other, "fp") == request_key(req, "fp")

    @given(doc=documents)
    def test_config_fanout_is_the_full_cross_product(self, doc):
        req = validate_advise_request(doc)
        keys = {c.key for c in req.configs}
        assert len(keys) == len(req.schemes) * len(req.frequencies)


_bad_values = st.one_of(
    st.none(),
    st.booleans(),
    st.integers(min_value=17, max_value=10_000),
    st.text(min_size=1, max_size=8).filter(
        lambda s: s
        not in SCHEMES
        + PLACEMENTS
        + ("matmul", "model", "sampled", "auto", "sweep", "analytic",
           "energy", "time", "edp", "ondemand")
    ),
    st.lists(st.integers(), max_size=2),
)

malformed = st.one_of(
    # Wrong document type entirely.
    st.lists(st.integers(), max_size=3),
    st.text(max_size=8),
    # A valid-shaped document with one field replaced by garbage.
    st.tuples(
        documents,
        st.sampled_from(
            (
                "kernel", "size_exp", "schemes", "placement",
                "frequencies", "measure", "refine", "objective",
                "deadline_s",
            )
        ),
        _bad_values,
    ).map(lambda t: {**t[0], t[1]: t[2]}),
    # An unknown field.
    documents.map(lambda d: {**d, "warp_factor": 9}),
)


class TestTypedRejection:
    @given(doc=malformed)
    def test_every_rejection_carries_a_field_path(self, doc):
        try:
            req = validate_advise_request(doc)
        except ValidationError as exc:
            assert isinstance(exc.path, str) and exc.path
            # The path names the document root or a real field of the
            # offending document.
            root = exc.path.split("[", 1)[0]
            assert exc.path == "$" or root in doc
            return
        except Exception as exc:  # noqa: BLE001 - the property under test
            pytest.fail(
                f"non-typed rejection {type(exc).__name__}: {exc} for {doc!r}"
            )
        # Accepted: the replacement value happened to be valid — then the
        # round-trip invariant must still hold.
        assert validate_advise_request(req.to_dict()) == req
