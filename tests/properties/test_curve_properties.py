"""Property-based tests for the curve bijections (Hypothesis).

Each registered ordering maps ``(y, x)`` on an ``side x side`` grid
bijectively onto ``[0, side**2)``.  Hypothesis explores random orders,
coordinates and indices; small orders are additionally checked
exhaustively as full permutations.  Skips gracefully when Hypothesis is
not installed (it is exercised by the dedicated CI job).
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.curves import get_curve  # noqa: E402

# Power-of-two-sided curves (side = 2**order) and the ternary Peano
# curve (side = 3**order).  "brm" needs a block-size argument and is
# covered by its unit tests.
POW2_CODES = ["rm", "cm", "mo", "ho", "go", "holut"]

pow2_cases = st.integers(min_value=0, max_value=6).flatmap(
    lambda order: st.tuples(
        st.just(1 << order),
        st.integers(0, (1 << order) - 1),
        st.integers(0, (1 << order) - 1),
    )
)
peano_cases = st.integers(min_value=0, max_value=4).flatmap(
    lambda order: st.tuples(
        st.just(3**order),
        st.integers(0, 3**order - 1),
        st.integers(0, 3**order - 1),
    )
)


def case_strategy(code):
    return peano_cases if code == "po" else pow2_cases


@pytest.mark.parametrize("code", POW2_CODES + ["po"])
class TestRoundTrip:
    @given(data=st.data())
    def test_encode_decode_roundtrip(self, code, data):
        side, y, x = data.draw(case_strategy(code))
        curve = get_curve(code, side)
        d = curve.encode(y, x)
        assert 0 <= d < side * side
        assert curve.decode(d) == (y, x)

    @given(data=st.data())
    def test_decode_encode_roundtrip(self, code, data):
        side, y, x = data.draw(case_strategy(code))
        d0 = y * side + x  # reuse the coords draw as an index draw
        curve = get_curve(code, side)
        yy, xx = curve.decode(d0)
        assert 0 <= yy < side and 0 <= xx < side
        assert curve.encode(yy, xx) == d0

    @given(data=st.data())
    def test_scalar_matches_array_path(self, code, data):
        side, y, x = data.draw(case_strategy(code))
        curve = get_curve(code, side)
        scalar = curve.encode(y, x)
        arr = curve.encode(
            np.array([y], dtype=np.uint64), np.array([x], dtype=np.uint64)
        )
        assert int(arr[0]) == scalar


@pytest.mark.parametrize("code", POW2_CODES + ["po"])
def test_small_orders_are_full_permutations(code):
    """Exhaustive check: every small grid is a bijection onto the range."""
    base = 3 if code == "po" else 2
    for order in range(0, 4 if base == 2 else 3):
        side = base**order
        curve = get_curve(code, side)
        grid = curve.position_grid()
        assert sorted(grid.ravel().tolist()) == list(range(side * side))
