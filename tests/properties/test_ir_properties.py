"""Property-based tests for the trace-IR codec (Hypothesis).

The invariants the whole trace pipeline rests on:

* **Round-trip identity** — encode→decode reproduces every line
  address, write flag and tag exactly, for any uint64 line stream
  (including wrap-around deltas) and any tag distribution.
* **Chunk-boundary independence** — the same access stream split into
  segments at arbitrary boundaries decodes to the same concatenated
  columns; how a generator chunks its output never changes the trace.
* **Torn/corrupt-tail rejection** — a file truncated at any point, or
  with any payload byte flipped, is rejected with
  :class:`~repro.errors.TraceError` (the journal checksum discipline),
  never silently misread.

Skips gracefully when Hypothesis is not installed (exercised by the
dedicated CI job).
"""

import pathlib
import tempfile

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.errors import TraceError  # noqa: E402
from repro.trace.ir import (  # noqa: E402
    TraceIRReader,
    TraceIRWriter,
    decode_frame,
    encode_frame,
)


@st.composite
def columns(draw, max_n=300):
    """Random (lines, is_write, tags) columns, biased toward nasty deltas."""
    n = draw(st.integers(0, max_n))
    flavor = draw(st.sampled_from(["any", "small", "extreme"]))
    if flavor == "small":
        base = draw(st.integers(0, 2**20))
        deltas = draw(
            st.lists(st.integers(-64, 64), min_size=n, max_size=n)
        )
        if n:
            walk = np.cumsum(
                np.array([base] + deltas[: n - 1], dtype=np.int64)
            )
            lines = walk.astype(np.uint64)  # C-cast wraps mod 2**64
        else:
            lines = np.empty(0, np.uint64)
    elif flavor == "extreme":
        pool = st.sampled_from(
            [0, 1, 2**32, 2**63 - 1, 2**63, 2**64 - 1]
        )
        lines = np.array(
            draw(st.lists(pool, min_size=n, max_size=n)), dtype=np.uint64
        )
    else:
        lines = np.array(
            draw(st.lists(st.integers(0, 2**64 - 1), min_size=n, max_size=n)),
            dtype=np.uint64,
        )
    is_write = np.array(
        draw(st.lists(st.booleans(), min_size=n, max_size=n)), dtype=bool
    )
    uniform = draw(st.booleans())
    if uniform:
        tags = np.full(n, draw(st.integers(0, 255)), dtype=np.uint8)
    else:
        tags = np.array(
            draw(st.lists(st.integers(0, 255), min_size=n, max_size=n)),
            dtype=np.uint8,
        )
    return lines, is_write, tags


class TestRoundTrip:
    @given(columns())
    @settings(max_examples=80, deadline=None)
    def test_frame_roundtrip_identity(self, cols):
        lines, is_write, tags = cols
        frame = encode_frame(lines, is_write, tags)
        L, W, T, end = decode_frame(frame)
        assert end == len(frame)
        np.testing.assert_array_equal(L, lines)
        np.testing.assert_array_equal(W, is_write)
        np.testing.assert_array_equal(T, tags)

    @given(columns(), st.data())
    @settings(max_examples=60, deadline=None)
    def test_chunk_boundary_independence(self, cols, data):
        """Any segmentation of one stream decodes to the same columns."""
        lines, is_write, tags = cols
        n = len(lines)
        n_cuts = data.draw(st.integers(0, min(5, n)))
        cuts = sorted(
            data.draw(
                st.lists(
                    st.integers(0, n), min_size=n_cuts, max_size=n_cuts
                )
            )
        )
        bounds = [0] + cuts + [n]
        frames = [
            encode_frame(lines[a:b], is_write[a:b], tags[a:b])
            for a, b in zip(bounds, bounds[1:])
        ]
        buf = b"".join(frames)
        got_l, got_w, got_t = [], [], []
        off = 0
        while off < len(buf):
            L, W, T, off = decode_frame(buf, off)
            got_l.append(L)
            got_w.append(W)
            got_t.append(T)
        cat = lambda parts, dt: (  # noqa: E731
            np.concatenate(parts) if parts else np.empty(0, dt)
        )
        np.testing.assert_array_equal(cat(got_l, np.uint64), lines)
        np.testing.assert_array_equal(cat(got_w, bool), is_write)
        np.testing.assert_array_equal(cat(got_t, np.uint8), tags)


class TestRejection:
    @given(columns(max_n=100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_torn_file_rejected(self, cols, data):
        """A file truncated anywhere strictly inside is never misread."""
        with tempfile.TemporaryDirectory() as tmp:
            path = pathlib.Path(tmp) / "t.ir"
            with TraceIRWriter(path, 64) as w:
                w.append(*cols)
            blob = path.read_bytes()
            cut = data.draw(st.integers(1, len(blob) - 1))
            torn = pathlib.Path(tmp) / "cut.ir"
            torn.write_bytes(blob[:cut])
            with pytest.raises(TraceError):
                with TraceIRReader(torn) as r:
                    r.verify()

    @given(columns(max_n=100), st.data())
    @settings(max_examples=50, deadline=None)
    def test_flipped_payload_byte_rejected(self, cols, data):
        lines, is_write, tags = cols
        frame = bytearray(encode_frame(lines, is_write, tags))
        pos = data.draw(st.integers(0, len(frame) - 1))
        bit = data.draw(st.integers(0, 7))
        frame[pos] ^= 1 << bit
        try:
            L, W, T, end = decode_frame(bytes(frame))
        except TraceError:
            return  # rejected: the property holds
        # A flip that decodes successfully must have hit the digest
        # itself... which is covered by the digest check — so the only
        # acceptable "success" is none at all.
        pytest.fail("corrupted frame decoded without error")
