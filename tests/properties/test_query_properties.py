"""Property-based tests for the query trace generators (Hypothesis).

The two layout-independence invariants the query study rests on:
every address a box query streams falls inside the queried box's
chunks, and the three orderings touch the identical chunk *set* —
only the linear store positions differ.  Skips gracefully when
Hypothesis is not installed (exercised by the dedicated CI job).
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, settings, strategies as st  # noqa: E402

from repro.trace.query_trace import (  # noqa: E402
    QUERY_KINDS,
    QueryStoreSpec,
    generate_queries,
    query_access_stream,
)

ORDERINGS = ("rm", "mo", "ho")

spec_params = st.tuples(
    st.sampled_from([2, 4, 8]),      # grid_side
    st.sampled_from([2, 4]),         # tile_side
    st.sampled_from(ORDERINGS),
)


def _chunk_coords(spec, positions):
    """Grid coordinates of store positions, as a canonical sorted set."""
    cy, cx = np.meshgrid(
        np.arange(spec.grid_side, dtype=np.uint64),
        np.arange(spec.grid_side, dtype=np.uint64),
        indexing="ij",
    )
    table = spec.chunk_positions(cy.ravel(), cx.ravel())
    inv = np.empty(spec.n_chunks, dtype=np.int64)
    inv[table.astype(np.int64)] = np.arange(spec.n_chunks)
    return sorted(int(inv[int(p)]) for p in positions)


class TestAddressesInsideBox:
    @given(spec_params, st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_bbox_stream_stays_inside_fetched_chunks(self, params, seed):
        grid, tile, ordering = params
        spec = QueryStoreSpec(grid_side=grid, tile_side=tile, ordering=ordering)
        line_bytes = min(64, spec.chunk_bytes)
        queries = generate_queries(spec, "bbox", 3, seed=seed)
        for q, chunk in zip(
            queries, query_access_stream(spec, queries, line_bytes=line_bytes)
        ):
            owners = np.unique(chunk.addr // np.uint64(spec.chunk_bytes))
            # Every streamed line lives in a chunk the query resolved to.
            assert set(owners.tolist()) <= set(q.positions.tolist())
            # And the resolved chunks are exactly the box's chunk cover.
            rows = range(q.y0 // tile, q.y1 // tile + 1)
            cols = range(q.x0 // tile, q.x1 // tile + 1)
            cover = sorted(r * grid + c for r in rows for c in cols)
            assert _chunk_coords(spec, q.positions) == cover

    @given(spec_params, st.integers(0, 2**32 - 1))
    @settings(max_examples=60, deadline=None)
    def test_stream_addresses_inside_store(self, params, seed):
        grid, tile, ordering = params
        spec = QueryStoreSpec(grid_side=grid, tile_side=tile, ordering=ordering)
        line_bytes = min(64, spec.chunk_bytes)
        for workload in QUERY_KINDS:
            queries = generate_queries(spec, workload, 2, seed=seed)
            for chunk in query_access_stream(spec, queries, line_bytes=line_bytes):
                assert int(chunk.addr.max()) < spec.store_bytes


class TestOrderingInvariance:
    @given(
        st.sampled_from([2, 4, 8]),
        st.sampled_from([2, 4]),
        st.sampled_from(QUERY_KINDS),
        st.integers(0, 2**32 - 1),
    )
    @settings(max_examples=60, deadline=None)
    def test_identical_chunk_set_across_orderings(self, grid, tile, workload, seed):
        covers = []
        for ordering in ORDERINGS:
            spec = QueryStoreSpec(grid_side=grid, tile_side=tile, ordering=ordering)
            queries = generate_queries(spec, workload, 3, seed=seed)
            covers.append(
                [_chunk_coords(spec, q.positions) for q in queries]
            )
        assert covers[0] == covers[1] == covers[2]
