"""Property-based tests for Raman–Wise dilation arithmetic (Hypothesis).

The shift/mask ladders in :mod:`repro.curves.dilation` are validated
against the naive one-bit-at-a-time oracle and their own inverses over
the full coordinate domains (32-bit for 2-D, 21-bit for 3-D).
"""

import numpy as np
import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import given, strategies as st  # noqa: E402

from repro.curves.dilation import (  # noqa: E402
    MAX_COORD_BITS_2D,
    MAX_COORD_BITS_3D,
    contract2,
    contract2_array,
    contract3,
    contract3_array,
    dilate2,
    dilate2_array,
    dilate3,
    dilate3_array,
    dilated_add2,
    dilated_increment2,
)
from repro.util.bits import interleave_bits_naive  # noqa: E402

coord2 = st.integers(0, (1 << MAX_COORD_BITS_2D) - 1)
coord3 = st.integers(0, (1 << MAX_COORD_BITS_3D) - 1)


class TestRoundTrip:
    @given(coord2)
    def test_contract2_inverts_dilate2(self, x):
        assert contract2(dilate2(x)) == x

    @given(coord3)
    def test_contract3_inverts_dilate3(self, x):
        assert contract3(dilate3(x)) == x

    @given(st.lists(coord2, min_size=1, max_size=32))
    def test_array_roundtrip_2d(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        assert np.array_equal(contract2_array(dilate2_array(arr)), arr)

    @given(st.lists(coord3, min_size=1, max_size=32))
    def test_array_roundtrip_3d(self, xs):
        arr = np.array(xs, dtype=np.uint64)
        assert np.array_equal(contract3_array(dilate3_array(arr)), arr)


class TestAgainstOracle:
    @given(coord2)
    def test_scalar_matches_array_2d(self, x):
        arr = dilate2_array(np.array([x], dtype=np.uint64))
        assert int(arr[0]) == dilate2(x)

    @given(coord3)
    def test_scalar_matches_array_3d(self, x):
        arr = dilate3_array(np.array([x], dtype=np.uint64))
        assert int(arr[0]) == dilate3(x)

    @given(coord2, coord2)
    def test_interleave_is_shifted_dilations(self, major, minor):
        assert interleave_bits_naive(major, minor, MAX_COORD_BITS_2D) == (
            (dilate2(major) << 1) | dilate2(minor)
        )


class TestDilatedArithmetic:
    @given(coord2.filter(lambda v: v < 1 << 31), coord2.filter(lambda v: v < 1 << 31))
    def test_add_homomorphism(self, a, b):
        # Keep the sum inside the 32-bit coordinate domain.
        s = (a + b) & ((1 << MAX_COORD_BITS_2D) - 1)
        assert dilated_add2(dilate2(a), dilate2(b)) == dilate2(s)

    @given(coord2)
    def test_increment_is_add_one(self, a):
        s = (a + 1) & ((1 << MAX_COORD_BITS_2D) - 1)
        assert dilated_increment2(dilate2(a)) == dilate2(s)

    @given(coord2)
    def test_add_rejects_undilated(self, a):
        bad = dilate2(a) | 0b10  # force an odd (gap) bit on
        with pytest.raises(ValueError):
            dilated_add2(bad, 0)
