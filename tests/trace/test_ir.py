"""Unit tests for the columnar trace IR (repro.trace.ir).

Codec round-trips, on-disk format validation (magic/version/torn-tail/
digest rejection), the lowering adapter, and the content-addressed
cache's atomic-write/stale-tmp discipline.
"""

import os

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import TraceChunk, concat_chunks
from repro.trace.ir import (
    IR_VERSION,
    TRACE_KINDS,
    TraceIRCache,
    TraceIRReader,
    TraceIRWriter,
    build_trace_chunks,
    decode_frame,
    encode_frame,
    lower_chunks,
    materialize_trace_ir,
    matmul_trace_ir,
    trace_fingerprint,
    write_trace_ir,
)
from repro.trace.matmul_trace import MatmulTraceSpec, naive_matmul_trace


def rand_columns(n, seed=0, tag_uniform=False):
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 2**63, size=n, dtype=np.uint64)
    is_write = rng.integers(0, 2, size=n).astype(bool)
    if tag_uniform:
        tags = np.full(n, 3, dtype=np.uint8)
    else:
        tags = rng.integers(0, 256, size=n).astype(np.uint8)
    return lines, is_write, tags


class TestFrameCodec:
    @pytest.mark.parametrize("n", [0, 1, 2, 3, 8, 63, 64, 65, 4096])
    @pytest.mark.parametrize("tag_uniform", [True, False])
    def test_roundtrip(self, n, tag_uniform):
        lines, w, t = rand_columns(n, seed=n, tag_uniform=tag_uniform)
        frame = encode_frame(lines, w, t)
        L, W, T, end = decode_frame(frame)
        assert end == len(frame)
        np.testing.assert_array_equal(L, lines)
        np.testing.assert_array_equal(W, w)
        np.testing.assert_array_equal(T, t)
        assert L.dtype == np.uint64 and W.dtype == bool and T.dtype == np.uint8

    def test_wrapping_deltas(self):
        # Deltas that wrap the full uint64 range must stay exact.
        lines = np.array([0, 2**64 - 1, 1, 2**63, 0], dtype=np.uint64)
        frame = encode_frame(lines, np.zeros(5, bool), np.zeros(5, np.uint8))
        L, _, _, _ = decode_frame(frame)
        np.testing.assert_array_equal(L, lines)

    def test_constant_stream_packs_to_zero_width(self):
        lines = np.full(1000, 42, dtype=np.uint64)
        frame = encode_frame(lines, np.zeros(1000, bool), np.zeros(1000, np.uint8))
        # width 0 deltas + packed write bits + uniform tag: far below raw.
        assert len(frame) < 1000
        L, _, _, _ = decode_frame(frame)
        np.testing.assert_array_equal(L, lines)

    def test_column_length_mismatch(self):
        with pytest.raises(TraceError, match="length mismatch"):
            encode_frame(
                np.zeros(3, np.uint64), np.zeros(2, bool), np.zeros(3, np.uint8)
            )

    def test_truncated_frame_rejected(self):
        lines, w, t = rand_columns(100)
        frame = encode_frame(lines, w, t)
        with pytest.raises(TraceError, match="truncated"):
            decode_frame(frame[:-1])
        with pytest.raises(TraceError, match="truncated"):
            decode_frame(frame[:10])

    def test_corrupt_payload_rejected(self):
        lines, w, t = rand_columns(100)
        frame = bytearray(encode_frame(lines, w, t))
        frame[-1] ^= 0xFF
        with pytest.raises(TraceError, match="digest mismatch"):
            decode_frame(bytes(frame))

    def test_frames_concatenate(self):
        a = encode_frame(*rand_columns(10, seed=1))
        b = encode_frame(*rand_columns(20, seed=2))
        buf = a + b
        _, _, _, end = decode_frame(buf)
        assert end == len(a)
        L, _, _, end2 = decode_frame(buf, end)
        assert end2 == len(buf) and len(L) == 20


class TestLowering:
    def test_one_segment_per_chunk(self):
        spec = MatmulTraceSpec.uniform(8, "mo")
        chunks = list(naive_matmul_trace(spec))
        segs = list(lower_chunks(iter(chunks), 64))
        assert len(segs) == len(chunks)
        for (lines, w, t), c in zip(segs, chunks):
            np.testing.assert_array_equal(lines, c.lines(64))
            np.testing.assert_array_equal(w, c.is_write)
            np.testing.assert_array_equal(t, c.tag)

    def test_rejects_bad_line_bytes(self):
        with pytest.raises(TraceError, match="power of two"):
            list(lower_chunks([], 48))


class TestFileFormat:
    def _write(self, tmp_path, spec=None, line_bytes=64, meta=None):
        spec = spec or MatmulTraceSpec.uniform(8, "ho")
        path = tmp_path / "t.ir"
        return write_trace_ir(
            path, naive_matmul_trace(spec), line_bytes, meta=meta
        )

    def test_roundtrip_matches_generator(self, tmp_path):
        spec = MatmulTraceSpec.uniform(8, "ho")
        path = self._write(tmp_path, spec, meta={"hello": 1})
        chunks = list(naive_matmul_trace(spec))
        with TraceIRReader(path) as r:
            assert r.meta == {"hello": 1}
            assert r.line_bytes == 64
            assert r.n_segments == len(chunks)
            assert r.n_accesses == sum(len(c) for c in chunks)
            for (lines, w, t), c in zip(r.segments(), chunks):
                np.testing.assert_array_equal(lines, c.lines(64))
                np.testing.assert_array_equal(w, c.is_write)
                np.testing.assert_array_equal(t, c.tag)
            r.verify()

    def test_random_access_segment(self, tmp_path):
        spec = MatmulTraceSpec.uniform(8, "rm")
        path = self._write(tmp_path, spec)
        chunks = list(naive_matmul_trace(spec))
        with TraceIRReader(path) as r:
            lines, _, _ = r.segment(len(chunks) - 1)
            np.testing.assert_array_equal(lines, chunks[-1].lines(64))

    def test_stats(self, tmp_path):
        spec = MatmulTraceSpec.uniform(8, "ho")
        path = self._write(tmp_path, spec)
        merged = concat_chunks(naive_matmul_trace(spec))
        with TraceIRReader(path) as r:
            st = r.stats()
        assert st.accesses == len(merged)
        assert st.writes == int(merged.is_write.sum())
        assert st.unique_lines == len(np.unique(merged.lines(64)))
        assert st.line_bytes == 64
        assert st.encoded_bytes == os.path.getsize(path)
        assert st.compression_ratio > 1.0

    def test_bad_magic(self, tmp_path):
        path = tmp_path / "bad.ir"
        path.write_bytes(b"\x00" * 200)
        with pytest.raises(TraceError, match="bad magic"):
            TraceIRReader(path)

    def test_too_short(self, tmp_path):
        path = tmp_path / "short.ir"
        path.write_bytes(b"SFCTIR01")
        with pytest.raises(TraceError, match="too short"):
            TraceIRReader(path)

    def test_missing_file(self, tmp_path):
        with pytest.raises(TraceError, match="cannot open"):
            TraceIRReader(tmp_path / "nope.ir")

    def test_torn_tail_rejected(self, tmp_path):
        path = self._write(tmp_path)
        data = path.read_bytes()
        for cut in (1, 8, 40, len(data) // 2, len(data) - 1):
            torn = tmp_path / "torn.ir"
            torn.write_bytes(data[:-cut])
            with pytest.raises(TraceError):
                TraceIRReader(torn)

    def test_corrupt_segment_detected_by_verify(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        # Flip a byte in the middle of the segment payloads.
        data[len(data) // 2] ^= 0xFF
        bad = tmp_path / "bad.ir"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceError):
            with TraceIRReader(bad) as r:
                r.verify()

    def test_version_mismatch(self, tmp_path):
        path = self._write(tmp_path)
        data = bytearray(path.read_bytes())
        data[8] = IR_VERSION + 1  # version field follows the 8-byte magic
        bad = tmp_path / "vers.ir"
        bad.write_bytes(bytes(data))
        with pytest.raises(TraceError, match="version"):
            TraceIRReader(bad)

    def test_writer_abort_leaves_nothing(self, tmp_path):
        path = tmp_path / "never.ir"
        w = TraceIRWriter(path, 64)
        w.append(*rand_columns(10))
        w.abort()
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_writer_context_cleans_up_on_error(self, tmp_path):
        path = tmp_path / "never.ir"
        with pytest.raises(RuntimeError):
            with TraceIRWriter(path, 64) as w:
                w.append(*rand_columns(10))
                raise RuntimeError("boom")
        assert not path.exists()
        assert list(tmp_path.iterdir()) == []

    def test_writer_rejects_bad_line_bytes(self, tmp_path):
        with pytest.raises(TraceError, match="power of two"):
            TraceIRWriter(tmp_path / "x.ir", 100)

    def test_empty_trace_file(self, tmp_path):
        path = write_trace_ir(tmp_path / "empty.ir", [], 64)
        with TraceIRReader(path) as r:
            assert r.n_segments == 0 and r.n_accesses == 0
            assert list(r.segments()) == []
            assert r.stats().accesses == 0


MATMUL_PARAMS = {
    "n": 8, "scheme_a": "ho", "scheme_b": "ho", "scheme_c": "ho",
    "elem_bytes": 8, "rows": None, "cols_per_chunk": 64, "loop_order": "ijk",
}


class TestFingerprint:
    def test_stable(self):
        a = trace_fingerprint("matmul", MATMUL_PARAMS, 64)
        b = trace_fingerprint("matmul", dict(MATMUL_PARAMS), 64)
        assert a == b

    def test_sensitive_to_params_and_granularity(self):
        base = trace_fingerprint("matmul", MATMUL_PARAMS, 64)
        assert trace_fingerprint("matmul", MATMUL_PARAMS, 128) != base
        other = dict(MATMUL_PARAMS, n=16)
        assert trace_fingerprint("matmul", other, 64) != base
        assert trace_fingerprint("blocked", MATMUL_PARAMS, 64) != base


class TestKindRegistry:
    def test_every_kind_builds(self):
        params = {
            "matmul": MATMUL_PARAMS,
            "blocked": {
                "variant": "tiled", "n": 8, "scheme_a": "rm",
                "scheme_b": "rm", "scheme_c": "rm", "block": 4,
            },
            "synthetic": {
                "variant": "sequential", "n_accesses": 100,
            },
            "query": {
                "grid_side": 4, "tile_side": 4, "workload": "bbox",
                "n_queries": 3, "seed": 0, "stream_line_bytes": 64,
            },
        }
        assert set(params) == set(TRACE_KINDS)
        for kind, p in params.items():
            chunks = list(build_trace_chunks(kind, p))
            assert chunks and all(isinstance(c, TraceChunk) for c in chunks)

    def test_unknown_kind(self):
        with pytest.raises(TraceError, match="unknown trace kind"):
            build_trace_chunks("nope", {})

    def test_missing_parameter(self):
        with pytest.raises(TraceError, match="missing parameter"):
            build_trace_chunks("matmul", {"n": 8})

    def test_unexpected_parameter(self):
        with pytest.raises(TraceError, match="invalid parameters"):
            build_trace_chunks(
                "synthetic", {"variant": "sequential", "bogus": 1}
            )

    def test_unknown_synthetic_variant(self):
        with pytest.raises(TraceError, match="unknown synthetic variant"):
            list(build_trace_chunks("synthetic", {"variant": "nope"}))


class TestCache:
    def test_get_or_build_hits(self, tmp_path):
        cache = TraceIRCache(tmp_path)
        p1 = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        mtime = p1.stat().st_mtime_ns
        p2 = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        assert p1 == p2
        assert p2.stat().st_mtime_ns == mtime  # untouched: a cache hit

    def test_corrupt_entry_rebuilt(self, tmp_path):
        cache = TraceIRCache(tmp_path)
        p = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        good = p.read_bytes()
        p.write_bytes(good[: len(good) // 2])  # torn write
        p2 = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        assert p2 == p and p2.read_bytes() == good

    def test_stale_tmp_swept(self, tmp_path):
        cache = TraceIRCache(tmp_path)
        p = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        dead = p.parent / f".{p.name}.999999999.tmp"
        dead.write_bytes(b"debris")
        mine = p.parent / f".{p.name}.{os.getpid()}.tmp"
        mine.write_bytes(b"own-pid debris from a previous life")
        TraceIRCache(tmp_path)  # sweep runs on open
        assert not dead.exists()
        assert not mine.exists()
        assert p.exists()

    def test_fresh_tmp_of_live_pid_kept(self, tmp_path):
        cache = TraceIRCache(tmp_path)
        p = cache.get_or_build("matmul", MATMUL_PARAMS, 64)
        ppid = os.getppid()
        if ppid <= 1:  # pragma: no cover - init-parented test runner
            pytest.skip("no live foreign pid to impersonate")
        live = p.parent / f".{p.name}.{ppid}.tmp"
        live.write_bytes(b"in-flight write of a live process")
        TraceIRCache(tmp_path)
        assert live.exists()
        live.unlink()

    def test_materialize_helpers(self, tmp_path):
        p1 = materialize_trace_ir("matmul", MATMUL_PARAMS, 64, cache_dir=tmp_path)
        spec = MatmulTraceSpec.uniform(8, "ho")
        p2 = matmul_trace_ir(spec, cache_dir=tmp_path)
        assert p1 == p2  # identical spec -> identical content address
        with TraceIRReader(p2) as r:
            assert r.meta["kind"] == "matmul"
            assert r.meta["params"]["n"] == 8
            assert r.meta["fingerprint"] == p2.name[: -len(".ir")]

    def test_rows_change_the_address(self, tmp_path):
        spec = MatmulTraceSpec.uniform(8, "ho")
        p_all = matmul_trace_ir(spec, cache_dir=tmp_path)
        p_rows = matmul_trace_ir(spec, rows=[1, 2], cache_dir=tmp_path)
        assert p_all != p_rows
        chunks = list(naive_matmul_trace(spec, rows=[1, 2]))
        with TraceIRReader(p_rows) as r:
            assert r.n_accesses == sum(len(c) for c in chunks)
