"""Trace chunk representation."""

import numpy as np
import pytest

from repro.trace import TAG_A, TAG_B, TAG_C, TraceChunk, concat_chunks


class TestTraceChunk:
    def test_reads_constructor(self):
        c = TraceChunk.reads(np.array([0, 8, 16]), tag=TAG_B)
        assert len(c) == 3
        assert not c.is_write.any()
        assert (c.tag == TAG_B).all()

    def test_writes_constructor(self):
        c = TraceChunk.writes(np.array([64]))
        assert c.is_write.all()
        assert (c.tag == TAG_C).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceChunk(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=bool),
                np.zeros(3, dtype=np.uint8),
            )

    def test_lines(self):
        c = TraceChunk.reads(np.array([0, 63, 64, 127, 128]))
        np.testing.assert_array_equal(c.lines(64), [0, 0, 1, 1, 2])

    def test_lines_rejects_non_pow2(self):
        c = TraceChunk.reads(np.array([0]))
        with pytest.raises(ValueError):
            c.lines(48)

    def test_dtype_coercion(self):
        c = TraceChunk(
            np.array([1, 2], dtype=np.int32),
            np.array([0, 1], dtype=np.int8),
            np.array([0, 1], dtype=np.int16),
        )
        assert c.addr.dtype == np.uint64
        assert c.is_write.dtype == bool
        assert c.tag.dtype == np.uint8


class TestConcat:
    def test_empty(self):
        c = concat_chunks([])
        assert len(c) == 0

    def test_roundtrip(self):
        a = TraceChunk.reads(np.array([0, 8]), tag=TAG_A)
        b = TraceChunk.writes(np.array([16]))
        c = concat_chunks([a, b])
        assert len(c) == 3
        np.testing.assert_array_equal(c.addr, [0, 8, 16])
        np.testing.assert_array_equal(c.is_write, [False, False, True])
