"""Trace chunk representation."""

import numpy as np
import pytest

from repro.trace import TAG_A, TAG_B, TAG_C, TraceChunk, concat_chunks


class TestTraceChunk:
    def test_reads_constructor(self):
        c = TraceChunk.reads(np.array([0, 8, 16]), tag=TAG_B)
        assert len(c) == 3
        assert not c.is_write.any()
        assert (c.tag == TAG_B).all()

    def test_writes_constructor(self):
        c = TraceChunk.writes(np.array([64]))
        assert c.is_write.all()
        assert (c.tag == TAG_C).all()

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            TraceChunk(
                np.zeros(3, dtype=np.uint64),
                np.zeros(2, dtype=bool),
                np.zeros(3, dtype=np.uint8),
            )

    def test_lines(self):
        c = TraceChunk.reads(np.array([0, 63, 64, 127, 128]))
        np.testing.assert_array_equal(c.lines(64), [0, 0, 1, 1, 2])

    def test_lines_rejects_non_pow2(self):
        c = TraceChunk.reads(np.array([0]))
        with pytest.raises(ValueError):
            c.lines(48)

    def test_dtype_coercion(self):
        c = TraceChunk(
            np.array([1, 2], dtype=np.int32),
            np.array([0, 1], dtype=np.int8),
            np.array([0, 1], dtype=np.int16),
        )
        assert c.addr.dtype == np.uint64
        assert c.is_write.dtype == bool
        assert c.tag.dtype == np.uint8


class TestConcat:
    def test_empty(self):
        c = concat_chunks([])
        assert len(c) == 0

    def test_empty_has_canonical_dtypes(self):
        c = concat_chunks([])
        assert c.addr.dtype == np.uint64
        assert c.is_write.dtype == bool
        assert c.tag.dtype == np.uint8
        assert c.addr.flags.c_contiguous
        # The zero-length chunk must behave like any other chunk.
        assert c.lines(64).shape == (0,)
        assert len(concat_chunks([c, c])) == 0

    def test_empty_generator(self):
        assert len(concat_chunks(c for c in [])) == 0

    def test_roundtrip(self):
        a = TraceChunk.reads(np.array([0, 8]), tag=TAG_A)
        b = TraceChunk.writes(np.array([16]))
        c = concat_chunks([a, b])
        assert len(c) == 3
        np.testing.assert_array_equal(c.addr, [0, 8, 16])
        np.testing.assert_array_equal(c.is_write, [False, False, True])

    def test_generator_input_drained_once(self):
        chunks = (
            TraceChunk.reads(np.array([i * 8]), tag=TAG_A) for i in range(4)
        )
        c = concat_chunks(chunks)
        assert len(c) == 4
        np.testing.assert_array_equal(c.addr, [0, 8, 16, 24])

    def test_mixed_input_dtypes_and_contiguity(self):
        # Inputs with off-spec dtypes and non-contiguous columns (strided
        # views) must concatenate to canonical, C-contiguous columns.
        a = TraceChunk(
            np.array([1, 2, 3], dtype=np.int32),
            np.array([0, 1, 0], dtype=np.int8),
            np.array([0, 1, 2], dtype=np.int64),
        )
        strided = TraceChunk.reads(np.arange(6, dtype=np.uint64) * 8, tag=TAG_B)
        view = TraceChunk(
            strided.addr[::2], strided.is_write[::2], strided.tag[::2]
        )
        c = concat_chunks([a, view])
        assert c.addr.dtype == np.uint64
        assert c.is_write.dtype == bool
        assert c.tag.dtype == np.uint8
        assert c.addr.flags.c_contiguous
        assert c.is_write.flags.c_contiguous
        assert c.tag.flags.c_contiguous
        np.testing.assert_array_equal(c.addr, [1, 2, 3, 0, 16, 32])
        np.testing.assert_array_equal(
            c.is_write, [False, True, False, False, False, False]
        )
        np.testing.assert_array_equal(c.tag, [0, 1, 2, TAG_B, TAG_B, TAG_B])

    def test_mixed_with_zero_length_chunks(self):
        empty = concat_chunks([])
        a = TraceChunk.writes(np.array([64, 128]))
        c = concat_chunks([empty, a, empty])
        assert len(c) == 2
        np.testing.assert_array_equal(c.addr, [64, 128])
        assert c.addr.dtype == np.uint64 and c.addr.flags.c_contiguous
