"""Chunked-store query trace generators."""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.trace import concat_chunks
from repro.trace.query_trace import (
    QUERY_KINDS,
    QueryStoreSpec,
    bbox_queries,
    generate_queries,
    knn_queries,
    query_access_stream,
    range_queries,
)

SPEC = QueryStoreSpec(grid_side=8, tile_side=4, elem_bytes=8, ordering="ho")


class TestSpec:
    def test_geometry(self):
        assert SPEC.chunk_points == 16
        assert SPEC.chunk_bytes == 128
        assert SPEC.side_points == 32
        assert SPEC.n_chunks == 64
        assert SPEC.store_bytes == 64 * 128

    @pytest.mark.parametrize("bad", [
        dict(grid_side=3), dict(grid_side=0), dict(tile_side=5),
        dict(elem_bytes=3), dict(base=-1),
    ])
    def test_rejects_bad_geometry(self, bad):
        with pytest.raises(TraceError):
            QueryStoreSpec(**{"grid_side": 8, **bad})

    def test_positions_are_a_permutation(self):
        for ordering in ("rm", "mo", "ho"):
            spec = QueryStoreSpec(grid_side=8, ordering=ordering)
            cy, cx = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
            pos = spec.chunk_positions(cy.ravel(), cx.ravel())
            np.testing.assert_array_equal(np.sort(pos), np.arange(64))

    def test_hilbert_matches_registered_curve(self):
        from repro.curves import get_curve

        spec = QueryStoreSpec(grid_side=8, ordering="ho")
        curve = get_curve("ho", 8)
        cy, cx = np.meshgrid(np.arange(8), np.arange(8), indexing="ij")
        batch = spec.chunk_positions(cy.ravel(), cx.ravel())
        ref = [curve.encode(int(y), int(x))
               for y, x in zip(cy.ravel(), cx.ravel())]
        np.testing.assert_array_equal(batch, np.asarray(ref, dtype=np.uint64))

    def test_degenerate_single_chunk_grid(self):
        spec = QueryStoreSpec(grid_side=1, tile_side=4, ordering="ho")
        assert spec.chunk_positions([0], [0])[0] == 0


class TestBbox:
    def test_deterministic(self):
        a = bbox_queries(SPEC, 16, seed=3)
        b = bbox_queries(SPEC, 16, seed=3)
        for qa, qb in zip(a, b):
            assert (qa.y0, qa.x0, qa.y1, qa.x1) == (qb.y0, qb.x0, qb.y1, qb.x1)
            np.testing.assert_array_equal(qa.positions, qb.positions)

    def test_inside_store(self):
        for q in bbox_queries(SPEC, 64, seed=1):
            assert 0 <= q.y0 <= q.y1 < SPEC.side_points
            assert 0 <= q.x0 <= q.x1 < SPEC.side_points

    def test_positions_sorted_unique(self):
        for q in bbox_queries(SPEC, 32, seed=2):
            assert np.all(np.diff(q.positions.astype(np.int64)) > 0)

    def test_useful_bytes_is_box_area(self):
        for q in bbox_queries(SPEC, 32, seed=4):
            area = (q.y1 - q.y0 + 1) * (q.x1 - q.x0 + 1)
            assert q.useful_bytes == area * SPEC.elem_bytes

    def test_rejects_bad_extents(self):
        with pytest.raises(TraceError):
            bbox_queries(SPEC, 1, min_extent=5, max_extent=4)
        with pytest.raises(TraceError):
            bbox_queries(SPEC, 1, max_extent=SPEC.side_points + 1)
        with pytest.raises(TraceError):
            bbox_queries(SPEC, -1)


class TestRange:
    def test_alternating_orientation(self):
        qs = range_queries(SPEC, 4, length=8, seed=0)
        assert qs[0].y0 == qs[0].y1 and qs[0].x1 - qs[0].x0 == 7
        assert qs[1].x0 == qs[1].x1 and qs[1].y1 - qs[1].y0 == 7

    def test_rejects_bad_length(self):
        with pytest.raises(TraceError):
            range_queries(SPEC, 1, length=0)
        with pytest.raises(TraceError):
            range_queries(SPEC, 1, length=SPEC.side_points + 1)


class TestKnn:
    def test_small_k_stays_in_one_chunk_ring(self):
        for q in knn_queries(SPEC, 16, k=1, seed=5):
            assert q.n_chunks == 1
            assert q.useful_bytes == SPEC.elem_bytes

    def test_covers_at_least_k(self):
        k = 3 * SPEC.chunk_points
        for q in knn_queries(SPEC, 16, k=k, seed=6):
            assert q.n_chunks * SPEC.chunk_points >= k
            assert q.useful_bytes == k * SPEC.elem_bytes

    def test_rejects_bad_k(self):
        with pytest.raises(TraceError):
            knn_queries(SPEC, 1, k=0)
        with pytest.raises(TraceError):
            knn_queries(SPEC, 1, k=SPEC.n_chunks * SPEC.chunk_points + 1)


class TestDispatch:
    @pytest.mark.parametrize("workload", QUERY_KINDS)
    def test_known_kinds(self, workload):
        qs = generate_queries(SPEC, workload, 4, seed=0)
        assert len(qs) == 4
        assert all(q.kind == workload for q in qs)

    def test_unknown_kind(self):
        with pytest.raises(TraceError):
            generate_queries(SPEC, "join", 1)


class TestAccessStream:
    def test_one_chunk_per_query_addresses_line_aligned(self):
        qs = bbox_queries(SPEC, 8, seed=7)
        chunks = list(query_access_stream(SPEC, qs, line_bytes=64))
        assert len(chunks) == len(qs)
        for c in chunks:
            assert np.all(c.addr % 64 == 0)
            assert np.all(np.diff(c.addr.astype(np.int64)) > 0)
            assert not c.is_write.any()

    def test_addresses_fall_in_fetched_chunks(self):
        qs = bbox_queries(SPEC, 8, seed=8)
        for q, c in zip(qs, query_access_stream(SPEC, qs)):
            owners = np.unique(c.addr // np.uint64(SPEC.chunk_bytes))
            np.testing.assert_array_equal(owners, q.positions)

    def test_knn_scans_whole_chunks(self):
        qs = knn_queries(SPEC, 4, k=1, seed=9)
        lines_per_chunk = SPEC.chunk_bytes // 64
        for q, c in zip(qs, query_access_stream(SPEC, qs, line_bytes=64)):
            assert len(c) == q.n_chunks * lines_per_chunk

    def test_base_offset(self):
        spec = QueryStoreSpec(grid_side=4, tile_side=4, base=1 << 20)
        qs = bbox_queries(spec, 4, seed=0)
        c = concat_chunks(list(query_access_stream(spec, qs)))
        assert int(c.addr.min()) >= 1 << 20

    def test_rejects_bad_line_bytes(self):
        with pytest.raises(TraceError):
            list(query_access_stream(SPEC, [], line_bytes=48))

    def test_rejects_line_larger_than_chunk(self):
        small = QueryStoreSpec(grid_side=4, tile_side=2, elem_bytes=8)
        assert small.chunk_bytes == 32
        with pytest.raises(TraceError):
            list(query_access_stream(small, [], line_bytes=64))

    def test_identical_spatial_stream_across_orderings(self):
        # Same seed -> same point-space geometry regardless of layout.
        for workload in QUERY_KINDS:
            boxes = set()
            for ordering in ("rm", "mo", "ho"):
                spec = QueryStoreSpec(grid_side=8, tile_side=4, ordering=ordering)
                qs = generate_queries(spec, workload, 12, seed=11)
                boxes.add(tuple((q.y0, q.x0, q.y1, q.x1) for q in qs))
            assert len(boxes) == 1
