"""Blocked-kernel traces: structure and the miss-reduction story."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import CacheSpec, MachineSpec, SocketSim
from repro.trace import (
    MatmulTraceSpec,
    TAG_A,
    TAG_B,
    TAG_C,
    blocked_trace_length,
    concat_chunks,
    naive_matmul_trace,
    recursive_matmul_trace,
    tiled_matmul_trace,
)


@pytest.fixture
def machine():
    return MachineSpec(
        name="mini", sockets=1, cores_per_socket=1,
        l1=CacheSpec("L1", 512, 64, 1),
        l2=CacheSpec("L2", 2048, 64, 8),
        l3=CacheSpec("L3", 32 * 1024, 64, 16),
    )


def run_trace(machine, gen):
    s = SocketSim(machine, 1)
    total = 0
    for chunk in gen:
        s.access_chunk(0, chunk)
        total += len(chunk)
    return total, s.result()


class TestStructure:
    def test_length_formula(self):
        spec = MatmulTraceSpec.uniform(32, "rm")
        total = sum(len(c) for c in tiled_matmul_trace(spec, 8))
        assert total == blocked_trace_length(32, 8)

    def test_recursive_same_length_as_tiled(self):
        spec = MatmulTraceSpec.uniform(32, "mo")
        t = sum(len(c) for c in tiled_matmul_trace(spec, 8))
        r = sum(len(c) for c in recursive_matmul_trace(spec, 8))
        assert t == r

    def test_tag_totals(self):
        n, t = 16, 4
        spec = MatmulTraceSpec.uniform(n, "rm")
        full = concat_chunks(list(tiled_matmul_trace(spec, t)))
        nb = n // t
        assert int((full.tag == TAG_A).sum()) == nb**3 * t * t
        assert int((full.tag == TAG_B).sum()) == nb**3 * t * t
        assert int((full.tag == TAG_C).sum()) == nb**2 * 2 * t * t  # read+write

    def test_c_written_once_per_tile(self):
        spec = MatmulTraceSpec.uniform(16, "rm")
        full = concat_chunks(list(tiled_matmul_trace(spec, 4)))
        writes = full.addr[full.is_write]
        assert len(writes) == 16 * 16
        assert len(np.unique(writes)) == 16 * 16

    def test_addresses_within_operand_ranges(self):
        spec = MatmulTraceSpec.uniform(16, "mo")
        full = concat_chunks(list(recursive_matmul_trace(spec, 4)))
        for tag, which in ((TAG_A, "a"), (TAG_B, "b"), (TAG_C, "c")):
            addrs = full.addr[full.tag == tag]
            lo = spec.base(which)
            assert addrs.min() >= lo
            assert addrs.max() < lo + spec.matrix_bytes

    def test_validation(self):
        spec = MatmulTraceSpec.uniform(16, "rm")
        with pytest.raises(SimulationError):
            list(tiled_matmul_trace(spec, 5))
        with pytest.raises(SimulationError):
            list(recursive_matmul_trace(spec, 3))


class TestMissStory:
    def test_blocking_slashes_misses(self, machine):
        # The algorithmic half of the ATLAS comparison: at a size whose
        # working set exceeds the LLC, the blocked kernels' LL misses are
        # an order of magnitude below the naive kernel's.
        spec = MatmulTraceSpec.uniform(64, "rm")
        _, naive = run_trace(machine, naive_matmul_trace(spec))
        _, tiled = run_trace(machine, tiled_matmul_trace(spec, 16))
        assert tiled.l3.misses < naive.l3.misses / 10

    def test_cache_oblivious_matches_tuned_blocking(self, machine):
        # The recursion never saw the cache size, yet lands at (or below)
        # the explicitly tiled kernel's misses — Bader/Zenger's point.
        spec = MatmulTraceSpec.uniform(64, "rm")
        _, tiled = run_trace(machine, tiled_matmul_trace(spec, 16))
        _, rec = run_trace(machine, recursive_matmul_trace(spec, 16))
        assert rec.l3.misses <= tiled.l3.misses * 1.1

    def test_morton_layout_helps_blocked_gathers(self, machine):
        # Aligned tiles of an MO layout are contiguous: fewer lines per
        # gather than RM's strided tiles.
        rm_spec = MatmulTraceSpec.uniform(64, "rm")
        mo_spec = MatmulTraceSpec.uniform(64, "mo")
        _, rm = run_trace(machine, recursive_matmul_trace(rm_spec, 8))
        _, mo = run_trace(machine, recursive_matmul_trace(mo_spec, 8))
        assert mo.l1.misses <= rm.l1.misses
