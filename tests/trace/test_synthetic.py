"""Synthetic trace generators."""

import numpy as np
import pytest

from repro.trace import (
    concat_chunks,
    random_trace,
    sequential_trace,
    strided_trace,
    working_set_loop_trace,
)


class TestSequential:
    def test_addresses(self):
        c = concat_chunks(list(sequential_trace(10, elem_bytes=8)))
        np.testing.assert_array_equal(c.addr, np.arange(10) * 8)

    def test_chunking(self):
        chunks = list(sequential_trace(1000, chunk=256))
        assert [len(c) for c in chunks] == [256, 256, 256, 232]

    def test_base_offset(self):
        c = concat_chunks(list(sequential_trace(4, base=4096)))
        assert c.addr[0] == 4096


class TestStrided:
    def test_stride(self):
        c = concat_chunks(list(strided_trace(5, stride_bytes=256)))
        np.testing.assert_array_equal(np.diff(c.addr), 256)

    def test_rejects_bad_stride(self):
        with pytest.raises(ValueError):
            list(strided_trace(5, stride_bytes=0))


class TestRandom:
    def test_footprint_respected(self):
        c = concat_chunks(list(random_trace(10_000, footprint_bytes=1024)))
        assert c.addr.max() < 1024

    def test_reproducible(self):
        a = concat_chunks(list(random_trace(100, 4096, seed=7)))
        b = concat_chunks(list(random_trace(100, 4096, seed=7)))
        np.testing.assert_array_equal(a.addr, b.addr)

    def test_base_offset(self):
        # API parity with sequential/strided: composed calibration
        # streams must be able to place their footprints apart.
        plain = concat_chunks(list(random_trace(100, 1024, seed=7)))
        offset = concat_chunks(list(random_trace(100, 1024, base=1 << 20, seed=7)))
        np.testing.assert_array_equal(offset.addr, plain.addr + (1 << 20))
        assert int(offset.addr.min()) >= 1 << 20

    def test_rejects_tiny_footprint(self):
        with pytest.raises(ValueError):
            list(random_trace(10, footprint_bytes=4))


class TestWorkingSetLoop:
    def test_total_accesses(self):
        chunks = list(working_set_loop_trace(1024, passes=3))
        assert sum(len(c) for c in chunks) == 3 * 128

    def test_rejects_zero_passes(self):
        with pytest.raises(ValueError):
            list(working_set_loop_trace(1024, passes=0))
