"""Naive-kernel trace generation: access order, tags, sampling."""

import numpy as np
import pytest

from repro.curves import get_curve
from repro.errors import SimulationError
from repro.trace import (
    ELEM_BYTES,
    TAG_A,
    TAG_B,
    TAG_C,
    MatmulTraceSpec,
    concat_chunks,
    naive_matmul_trace,
    trace_length,
)


@pytest.fixture
def spec8():
    return MatmulTraceSpec.uniform(8, "rm")


class TestSpec:
    def test_uniform(self, spec8):
        assert spec8.scheme_a == spec8.scheme_b == spec8.scheme_c == "rm"

    def test_bases_page_aligned_disjoint(self, spec8):
        a, b, c = spec8.base("a"), spec8.base("b"), spec8.base("c")
        assert a == 0
        assert b % 4096 == 0 and c % 4096 == 0
        assert b >= spec8.matrix_bytes
        assert c >= b + spec8.matrix_bytes

    def test_matrix_bytes(self, spec8):
        assert spec8.matrix_bytes == 8 * 8 * ELEM_BYTES


class TestTraceStructure:
    def test_length(self, spec8):
        total = sum(len(c) for c in naive_matmul_trace(spec8))
        assert total == trace_length(8) == 8 * 8 * (2 * 8 + 1)

    def test_sampled_length(self, spec8):
        total = sum(len(c) for c in naive_matmul_trace(spec8, rows=[3, 4]))
        assert total == trace_length(8, rows=[3, 4])

    def test_tag_pattern(self, spec8):
        chunk = next(naive_matmul_trace(spec8, rows=[0], cols_per_chunk=1))
        # One j iteration: A,B alternating for 8 k values, then C.
        assert len(chunk) == 17
        np.testing.assert_array_equal(chunk.tag[:16:2], TAG_A)
        np.testing.assert_array_equal(chunk.tag[1:16:2], TAG_B)
        assert chunk.tag[16] == TAG_C

    def test_only_c_is_written(self, spec8):
        full = concat_chunks(list(naive_matmul_trace(spec8)))
        assert (full.tag[full.is_write] == TAG_C).all()
        assert not full.is_write[full.tag != TAG_C].any()

    def test_addresses_match_kernel_semantics(self):
        n = 4
        spec = MatmulTraceSpec.uniform(n, "mo")
        curve = get_curve("mo", n)
        chunk = next(naive_matmul_trace(spec, rows=[2], cols_per_chunk=1))
        # j = 0 iteration of row i=2: A(2,k), B(k,0), C(2,0).
        for k in range(n):
            a_addr = spec.base("a") + curve.encode(2, k) * ELEM_BYTES
            b_addr = spec.base("b") + curve.encode(k, 0) * ELEM_BYTES
            assert chunk.addr[2 * k] == a_addr
            assert chunk.addr[2 * k + 1] == b_addr
        assert chunk.addr[2 * n] == spec.base("c") + curve.encode(2, 0) * ELEM_BYTES

    def test_access_counts_per_matrix(self, spec8):
        full = concat_chunks(list(naive_matmul_trace(spec8)))
        n = 8
        assert int((full.tag == TAG_A).sum()) == n**3
        assert int((full.tag == TAG_B).sum()) == n**3
        assert int((full.tag == TAG_C).sum()) == n**2

    def test_mixed_layouts(self):
        spec = MatmulTraceSpec(8, "rm", "mo", "ho")
        total = sum(len(c) for c in naive_matmul_trace(spec))
        assert total == trace_length(8)


class TestValidation:
    def test_bad_rows(self, spec8):
        with pytest.raises(SimulationError):
            list(naive_matmul_trace(spec8, rows=[8]))

    def test_bad_chunk(self, spec8):
        with pytest.raises(SimulationError):
            list(naive_matmul_trace(spec8, cols_per_chunk=0))
