"""Loop-order variants of the naive kernel's reference stream."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import CacheSpec, MachineSpec, SocketSim
from repro.trace import (
    MatmulTraceSpec,
    TAG_A,
    TAG_B,
    TAG_C,
    concat_chunks,
    naive_matmul_trace,
)


def machine():
    return MachineSpec(
        name="mini", sockets=1, cores_per_socket=1,
        l1=CacheSpec("L1", 512, 64, 1),
        l2=CacheSpec("L2", 2048, 64, 8),
        l3=CacheSpec("L3", 32 * 1024, 64, 16),
    )


def ll_misses(gen):
    s = SocketSim(machine(), 1)
    for chunk in gen:
        s.access_chunk(0, chunk)
    return s.result().l3.misses


class TestStructure:
    @pytest.mark.parametrize("order", ["ikj", "jki"])
    def test_access_counts(self, order):
        n = 8
        spec = MatmulTraceSpec.uniform(n, "rm")
        full = concat_chunks(list(naive_matmul_trace(spec, loop_order=order)))
        # Per (outer, mid): 1 single-operand read + n stream reads + n C
        # read-modify-writes.
        assert len(full) == n * n * (1 + 3 * n)
        assert int(full.is_write.sum()) == n**3  # C written per inner iter
        if order == "ikj":
            assert int((full.tag == TAG_A).sum()) == n * n
            assert int((full.tag == TAG_B).sum()) == n**3
        else:
            assert int((full.tag == TAG_B).sum()) == n * n
            assert int((full.tag == TAG_A).sum()) == n**3
        assert int((full.tag == TAG_C).sum()) == 2 * n**3

    def test_ikj_c_addresses_are_row(self):
        n = 4
        spec = MatmulTraceSpec.uniform(n, "rm")
        full = concat_chunks(list(naive_matmul_trace(spec, rows=[2], loop_order="ikj")))
        c_addrs = np.unique(full.addr[full.tag == TAG_C])
        want = spec.base("c") + (2 * n + np.arange(n)) * 8
        np.testing.assert_array_equal(c_addrs, want)

    def test_invalid_order_rejected(self):
        spec = MatmulTraceSpec.uniform(8, "rm")
        with pytest.raises(SimulationError):
            list(naive_matmul_trace(spec, loop_order="kij"))


class TestLocalityStory:
    def test_ikj_fixes_rowmajor_b_misses(self):
        # The textbook result: for row-major storage, ikj turns the B
        # column walk into row streams — far fewer LL misses than ijk at
        # an out-of-cache size, despite the extra C traffic.
        spec = MatmulTraceSpec.uniform(64, "rm")
        rows = [31, 32]
        m_ijk = ll_misses(naive_matmul_trace(spec, rows=rows, loop_order="ijk"))
        m_ikj = ll_misses(naive_matmul_trace(spec, rows=rows, loop_order="ikj"))
        assert m_ikj < m_ijk / 3

    def test_morton_insensitive_to_loop_order(self):
        # Curve layouts buy symmetry: Morton's misses barely move across
        # loop orders — architecture- AND algorithm-obliviousness.
        spec = MatmulTraceSpec.uniform(64, "mo")
        rows = [31, 32]
        misses = {
            lo: ll_misses(naive_matmul_trace(spec, rows=rows, loop_order=lo))
            for lo in ("ijk", "ikj", "jki")
        }
        assert max(misses.values()) < 4 * min(misses.values())


class TestTraceLength:
    """trace_length must agree with the generator for every loop order."""

    @pytest.mark.parametrize("order", ["ijk", "ikj", "jki"])
    @pytest.mark.parametrize("rows", [None, [0], [1, 3, 6]])
    def test_matches_generator(self, order, rows):
        n = 8
        spec = MatmulTraceSpec.uniform(n, "rm")
        from repro.trace import trace_length

        got = sum(
            len(c) for c in naive_matmul_trace(spec, rows=rows, loop_order=order)
        )
        assert got == trace_length(n, rows=rows, loop_order=order)

    def test_formulae(self):
        from repro.trace import trace_length

        n = 8
        # ijk: per (i, j): 1 C read + n*(A, B) reads + 1 C write.
        assert trace_length(n) == n * n * (2 * n + 1)
        # ikj/jki: per middle iteration: 1 pivot read + n*(stream read +
        # C read-modify-write) = 1 + 3n accesses.
        assert trace_length(n, loop_order="ikj") == n * n * (3 * n + 1)
        assert trace_length(n, loop_order="jki") == n * n * (3 * n + 1)

    def test_invalid_order(self):
        from repro.trace import trace_length

        with pytest.raises(SimulationError):
            trace_length(8, loop_order="kij")
