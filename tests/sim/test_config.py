"""Machine specifications (paper Table II) and scaling."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    CACHEGRIND_LIKE,
    CacheSpec,
    MachineSpec,
    SANDY_BRIDGE_E5_2670,
    scaled_machine,
)


class TestCacheSpec:
    def test_geometry(self):
        c = CacheSpec("L1", 32 * 1024, 64, 8)
        assert c.n_lines == 512
        assert c.n_sets == 64

    def test_rejects_non_pow2_line(self):
        with pytest.raises(SimulationError):
            CacheSpec("x", 1024, 48, 2)

    def test_rejects_non_pow2_sets(self):
        with pytest.raises(SimulationError):
            CacheSpec("x", 3 * 64 * 2, 64, 2)

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            CacheSpec("x", 0, 64, 8)


class TestTable2Platform:
    def test_sockets_and_cores(self):
        m = SANDY_BRIDGE_E5_2670
        # Table II: 2 processors, 8 cores each.
        assert m.sockets == 2
        assert m.cores_per_socket == 8
        assert m.total_cores == 16

    def test_l3_is_20mb_shared(self):
        assert SANDY_BRIDGE_E5_2670.l3.size_bytes == 20 * 1024 * 1024

    def test_frequencies_match_table3(self):
        assert SANDY_BRIDGE_E5_2670.frequencies_ghz == (1.2, 1.8, 2.6)

    def test_llc_aggregate(self):
        m = SANDY_BRIDGE_E5_2670
        assert m.llc_aggregate_bytes(2) == 2 * m.l3.size_bytes
        with pytest.raises(SimulationError):
            m.llc_aggregate_bytes(3)

    def test_memory_clock(self):
        # DDR3-1600: the knee the paper observes above 1.6 GHz core clock.
        assert SANDY_BRIDGE_E5_2670.memory_clock_ghz == pytest.approx(1.6)


class TestScaling:
    def test_shrinks_by_factor(self):
        m = scaled_machine(SANDY_BRIDGE_E5_2670, 64)
        assert m.l3.size_bytes == SANDY_BRIDGE_E5_2670.l3.size_bytes // 64
        assert m.l3.assoc == SANDY_BRIDGE_E5_2670.l3.assoc
        assert m.l3.line_bytes == 64

    def test_clamps_tiny_levels(self):
        m = scaled_machine(SANDY_BRIDGE_E5_2670, 4096)
        assert m.l1.size_bytes >= m.l1.line_bytes
        assert m.l1.assoc >= 1

    def test_rejects_non_pow2_factor(self):
        with pytest.raises(SimulationError):
            scaled_machine(SANDY_BRIDGE_E5_2670, 3)

    def test_cachegrind_model_single_core(self):
        assert CACHEGRIND_LIKE.total_cores == 1
