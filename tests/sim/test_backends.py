"""The kernel-backend registry: resolution, fallback, and kernel parity.

The pure-Python kernel (``python_stream_replay``) is the same source the
numba backend JIT-compiles and the template the C backend transcribes, so
exercising it un-jitted here validates the algorithm on every host — the
compiled variants only have to match it, and the C leg runs wherever a
system compiler exists.
"""

import warnings

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.robust import DegradedRunWarning
from repro.sim import Cache, CacheSpec, FastCache
from repro.sim.backends import (
    BACKENDS,
    available_backends,
    backend_available,
    cbackend,
    get_replay_kernel,
    kernels,
    resolve_backend,
)


class TestRegistry:
    def test_numpy_always_available(self):
        assert backend_available("numpy")
        assert available_backends()[0] == "numpy"
        assert set(available_backends()) <= set(BACKENDS)

    def test_unknown_backend_raises(self):
        with pytest.raises(SimulationError, match="backend"):
            resolve_backend("turbo")
        with pytest.raises(SimulationError):
            FastCache(CacheSpec("t", 1024, 64, 4), backend="turbo")

    def test_auto_resolves_concrete_and_silent(self):
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            for req in (None, "auto"):
                got = resolve_backend(req)
                assert got in BACKENDS
                assert backend_available(got)

    def test_resolution_is_idempotent(self):
        # The property the spawn workers rely on: a resolved name resolves
        # to itself.
        for b in available_backends():
            assert resolve_backend(b) == b

    def test_numpy_kernel_is_none(self):
        assert get_replay_kernel("numpy") is None


class TestFallback:
    def test_missing_numba_degrades_with_warning(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        monkeypatch.setattr(kernels, "numba_stream_replay", None)
        monkeypatch.setattr(kernels, "NUMBA_IMPORT_ERROR", "forced by test")
        with pytest.warns(DegradedRunWarning, match="numba"):
            assert resolve_backend("numba") == "numpy"
        # The constructor path degrades too — to a working engine, not an
        # error — and records the concrete backend it landed on.
        with pytest.warns(DegradedRunWarning):
            fc = FastCache(CacheSpec("t", 1024, 64, 4), backend="numba")
        assert fc.backend == "numpy"
        fc.access_lines(np.arange(8, dtype=np.uint64), np.zeros(8, bool))
        assert fc.stats.accesses == 8

    def test_missing_compiler_degrades_with_warning(self, monkeypatch):
        monkeypatch.setattr(cbackend, "c_available", lambda: False)
        monkeypatch.setattr(
            cbackend, "c_unavailable_reason", lambda: "forced by test"
        )
        with pytest.warns(DegradedRunWarning, match="toolchain"):
            assert resolve_backend("c") == "numpy"

    def test_warn_flag_suppresses(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("numba", warn=False) == "numpy"

    def test_auto_never_warns_when_degraded(self, monkeypatch):
        monkeypatch.setattr(kernels, "HAS_NUMBA", False)
        monkeypatch.setattr(cbackend, "c_available", lambda: False)
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            assert resolve_backend("auto") == "numpy"


def _replay_setup(seed, n_sets=16, assoc=4, n=3000):
    """A random stream-replay problem: (set_mask, lines, is_write)."""
    rng = np.random.default_rng(seed)
    lines = rng.integers(0, 6 * n_sets * assoc, n).astype(np.uint64)
    is_write = (rng.random(n) < 0.4).astype(np.uint8)
    return n_sets, assoc, np.uint64(n_sets - 1), lines, is_write


class TestKernelParity:
    """Every compiled kernel against the pure-Python same-source kernel."""

    def _run(self, kernel, seed):
        n_sets, assoc, set_mask, lines, is_write = _replay_setup(seed)
        slots = np.full((n_sets, assoc), np.uint64(0xFFFFFFFFFFFFFFFF))
        dirty = np.zeros((n_sets, assoc), dtype=np.uint8)
        miss_flags = np.zeros(len(lines), dtype=np.uint8)
        ev, wb = kernel(slots, dirty, set_mask, lines, is_write, miss_flags)
        return slots, dirty, miss_flags, int(ev), int(wb)

    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_python_kernel_matches_fastcache_numpy(self, seed):
        # The un-jitted kernel against the wavefront, via FastCache's own
        # dispatch: monkey-free because FastCache accepts a kernel of None
        # (numpy) and we can compare whole-engine outputs.
        spec = CacheSpec("t", 16 * 4 * 64, 64, 4)
        rng = np.random.default_rng(seed)
        lines = rng.integers(0, 400, 5000).astype(np.uint64)
        w = rng.random(5000) < 0.3
        ref = FastCache(spec, backend="numpy")
        py = FastCache(spec, backend="numpy")
        py._replay = kernels.python_stream_replay  # force the kernel path
        r = ref.access_lines(lines, w)
        f = py.access_lines(lines, w)
        for a, b in zip(r, f):
            np.testing.assert_array_equal(a, b)
        assert ref.stats.misses == py.stats.misses
        assert ref.stats.evictions == py.stats.evictions
        assert ref.stats.writebacks == py.stats.writebacks
        np.testing.assert_array_equal(ref._stack, py._stack)
        np.testing.assert_array_equal(ref._dirty, py._dirty)

    @pytest.mark.skipif(not backend_available("c"), reason="no C toolchain")
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_c_kernel_matches_python_kernel(self, seed):
        got_py = self._run(kernels.python_stream_replay, seed)
        got_c = self._run(cbackend.c_stream_replay, seed)
        for a, b in zip(got_py, got_c):
            np.testing.assert_array_equal(a, b)

    @pytest.mark.skipif(not backend_available("numba"), reason="no numba")
    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_numba_kernel_matches_python_kernel(self, seed):
        got_py = self._run(kernels.python_stream_replay, seed)
        got_nb = self._run(kernels.numba_stream_replay, seed)
        for a, b in zip(got_py, got_nb):
            np.testing.assert_array_equal(a, b)


class TestOracleThroughBackends:
    """End-to-end: each available backend vs the reference Cache."""

    @pytest.mark.parametrize("assoc,n_sets", [(1, 8), (4, 16), (16, 1)])
    def test_against_reference(self, assoc, n_sets):
        spec = CacheSpec("t", n_sets * assoc * 64, 64, assoc)
        rng = np.random.default_rng(assoc * 100 + n_sets)
        chunks = []
        for _ in range(3):
            n = int(rng.integers(50, 600))
            chunks.append((
                rng.integers(0, 8 * n_sets * assoc + 1, n).astype(np.uint64),
                rng.random(n) < 0.3,
                rng.integers(0, 256, n).astype(np.uint8),
            ))
        ref = Cache(spec)
        ref_streams = [ref.access_lines(*c) for c in chunks]
        for backend in available_backends():
            fc = FastCache(spec, backend=backend)
            for chunk, expect in zip(chunks, ref_streams):
                got = fc.access_lines(*chunk)
                for a, b in zip(expect, got):
                    np.testing.assert_array_equal(a, b, err_msg=backend)
            assert fc.stats.misses == ref.stats.misses, backend
            assert fc.stats.writebacks == ref.stats.writebacks, backend
