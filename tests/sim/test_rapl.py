"""RAPL counter emulation: quantization, wraparound, unwrapping."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import RAPL_ENERGY_UNIT_J, RaplCounter, unwrap_counter


class TestCounter:
    def test_unit_is_papers(self):
        assert RAPL_ENERGY_UNIT_J == pytest.approx(15.3e-6)

    def test_quantization(self):
        c = RaplCounter()
        c.deposit(RAPL_ENERGY_UNIT_J * 2.7)
        assert c.read() == 2  # floor to whole units

    def test_residue_carried(self):
        c = RaplCounter()
        for _ in range(10):
            c.deposit(RAPL_ENERGY_UNIT_J * 0.3)
        # 3.0 units accumulated; float rounding may leave it a hair below.
        assert c.read() in (2, 3)
        assert c.total_joules == pytest.approx(3 * RAPL_ENERGY_UNIT_J)

    def test_total_joules_exact(self):
        c = RaplCounter()
        c.deposit(1.0)
        c.deposit(0.5)
        assert c.total_joules == pytest.approx(1.5)

    def test_wraparound(self):
        c = RaplCounter()
        c.deposit(RAPL_ENERGY_UNIT_J * (2**32 + 5))
        assert c.read() == 5

    def test_rejects_negative(self):
        with pytest.raises(SimulationError):
            RaplCounter().deposit(-1.0)

    def test_rejects_bad_unit(self):
        with pytest.raises(SimulationError):
            RaplCounter(unit_j=0)

    @given(st.lists(st.floats(min_value=0, max_value=10.0), min_size=1, max_size=50))
    def test_quantization_error_bounded(self, deposits):
        c = RaplCounter()
        for d in deposits:
            c.deposit(d)
        true = sum(deposits)
        observed = c.read() * RAPL_ENERGY_UNIT_J
        assert abs(true - observed) < RAPL_ENERGY_UNIT_J


class TestUnwrap:
    def test_monotone_input(self):
        raw = np.array([0, 100, 250, 400])
        j = unwrap_counter(raw)
        np.testing.assert_allclose(j, raw * RAPL_ENERGY_UNIT_J)

    def test_single_wrap(self):
        raw = np.array([2**32 - 10, 5])
        j = unwrap_counter(raw)
        assert j[1] - j[0] == pytest.approx(15 * RAPL_ENERGY_UNIT_J)

    def test_multiple_wraps(self):
        raw = np.array([2**32 - 1, 10, 2**32 - 1, 10])
        j = unwrap_counter(raw)
        assert np.all(np.diff(j) > 0)

    def test_round_trip_with_counter(self):
        c = RaplCounter()
        samples = [c.read()]
        rng = np.random.default_rng(0)
        total = 0.0
        for _ in range(20):
            e = float(rng.uniform(0, 5))
            total += e
            c.deposit(e)
            samples.append(c.read())
        j = unwrap_counter(np.array(samples))
        assert j[-1] == pytest.approx(total, abs=RAPL_ENERGY_UNIT_J * 21)

    def test_rejects_out_of_range(self):
        with pytest.raises(SimulationError):
            unwrap_counter(np.array([2**32]))
        with pytest.raises(SimulationError):
            unwrap_counter(np.array([-1]))

    def test_rejects_2d(self):
        with pytest.raises(SimulationError):
            unwrap_counter(np.zeros((2, 2)))

    def test_empty(self):
        assert unwrap_counter(np.array([], dtype=np.int64)).size == 0
