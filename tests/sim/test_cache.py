"""Exact LRU cache simulator: closed-form cases and properties."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Cache, CacheSpec
from repro.trace import TraceChunk, concat_chunks, sequential_trace, working_set_loop_trace


def small_cache(size=1024, line=64, assoc=2):
    return Cache(CacheSpec("test", size, line, assoc))


class TestBasics:
    def test_cold_miss_then_hit(self):
        c = small_cache()
        chunk = TraceChunk.reads(np.array([0, 0, 8, 64]))
        miss_lines, _, _ = c.access_chunk(chunk)
        # line 0 misses once (0 and 8 share it), line 1 misses.
        np.testing.assert_array_equal(miss_lines, [0, 1])
        assert c.stats.hits == 2
        assert c.stats.misses == 2

    def test_sequential_one_miss_per_line(self):
        c = small_cache()
        for chunk in sequential_trace(256, elem_bytes=8):
            c.access_chunk(chunk)
        assert c.stats.accesses == 256
        assert c.stats.misses == 256 * 8 // 64

    def test_working_set_fits_second_pass_hits(self):
        c = small_cache(size=4096, assoc=8)
        for chunk in working_set_loop_trace(2048, passes=2):
            c.access_chunk(chunk)
        # Pass 1: 32 compulsory misses; pass 2: all hits.
        assert c.stats.misses == 2048 // 64

    def test_working_set_exceeds_lru_thrashes(self):
        # Cyclic sweep over 2x the capacity: LRU evicts exactly what will
        # be needed next — every access to a new line misses, every pass.
        c = Cache(CacheSpec("t", 1024, 64, 16))  # fully associative
        for chunk in working_set_loop_trace(2048, passes=3):
            c.access_chunk(chunk)
        assert c.stats.misses == 3 * 2048 // 64

    def test_write_allocate(self):
        c = small_cache()
        c.access_chunk(TraceChunk.writes(np.array([0])))
        assert c.stats.misses == 1
        assert c.stats.write_misses == 1
        # Subsequent read of the same line hits.
        c.access_chunk(TraceChunk.reads(np.array([8])))
        assert c.stats.hits == 1

    def test_writeback_on_dirty_eviction(self):
        # Direct-mapped, 2 sets: lines 0 and 2 collide in set 0.
        c = Cache(CacheSpec("t", 128, 64, 1))
        c.access_chunk(TraceChunk.writes(np.array([0])))
        c.access_chunk(TraceChunk.reads(np.array([128])))  # evicts dirty line 0
        assert c.stats.evictions == 1
        assert c.stats.writebacks == 1
        # Clean eviction produces no writeback.
        c.access_chunk(TraceChunk.reads(np.array([0])))
        assert c.stats.writebacks == 1

    def test_lru_order(self):
        # 1 set, 2 ways: access 0, 1 (full), touch 0 again, then 2 evicts 1.
        c = Cache(CacheSpec("t", 128, 64, 2))
        c.access_chunk(TraceChunk.reads(np.array([0, 64, 0, 128])))
        miss_lines, _, _ = c.access_chunk(TraceChunk.reads(np.array([0, 64])))
        # 0 survived (was MRU), 1 was evicted.
        np.testing.assert_array_equal(miss_lines, [1])


class TestMissStream:
    def test_miss_stream_feeds_next_level(self):
        c = small_cache()
        chunk = TraceChunk.reads(np.array([0, 64, 0, 64, 128]))
        miss_lines, miss_w, miss_tags = c.access_chunk(chunk)
        np.testing.assert_array_equal(miss_lines, [0, 1, 2])
        assert not miss_w.any()

    def test_tags_propagate(self):
        c = small_cache()
        chunk = TraceChunk(
            np.array([0, 64], dtype=np.uint64),
            np.array([False, True]),
            np.array([1, 2], dtype=np.uint8),
        )
        _, _, tags = c.access_chunk(chunk)
        np.testing.assert_array_equal(tags, [1, 2])
        assert c.stats.tag_read_misses[1] == 1
        assert c.stats.tag_write_misses[2] == 1

    def test_length_mismatch(self):
        c = small_cache()
        with pytest.raises(SimulationError):
            c.access_lines(np.array([0]), np.array([False, True]))


class TestReset:
    def test_reset_clears_everything(self):
        c = small_cache()
        c.access_chunk(TraceChunk.reads(np.array([0, 64])))
        c.reset()
        assert c.stats.accesses == 0
        assert c.resident_lines == 0


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    assoc=st.sampled_from([1, 2, 4, 8]),
)
def test_against_naive_oracle(seed, assoc):
    """The tuned simulator must match a dict-based reference LRU."""
    spec = CacheSpec("t", 64 * 8 * assoc, 64, assoc)
    c = Cache(spec)
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 64 * 64, size=400, dtype=np.uint64) * 8

    # Reference: per-set ordered dicts.
    nsets = spec.n_sets
    ref_sets = [dict() for _ in range(nsets)]
    ref_misses = []
    for a in addrs.tolist():
        line = a >> 6
        s = ref_sets[line & (nsets - 1)]
        if line in s:
            s.pop(line)
            s[line] = None
        else:
            ref_misses.append(line)
            s[line] = None
            if len(s) > assoc:
                s.pop(next(iter(s)))

    miss_lines, _, _ = c.access_chunk(TraceChunk.reads(addrs))
    np.testing.assert_array_equal(miss_lines, ref_misses)


def test_hit_rate_monotone_in_capacity():
    """Bigger LRU caches never miss more on the same trace (inclusion)."""
    trace = list(working_set_loop_trace(4096, passes=2))
    misses = []
    for size in (512, 1024, 2048, 4096, 8192):
        c = Cache(CacheSpec("t", size, 64, size // 64))  # fully associative
        for chunk in trace:
            c.access_chunk(chunk)
        misses.append(c.stats.misses)
    assert misses == sorted(misses, reverse=True)
