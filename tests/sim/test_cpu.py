"""Core timing model: the paper's RM < MO << HO cycle costs."""

import pytest

from repro.sim import cycles_per_iteration, hoisted_index_ops, kernel_compute_seconds


class TestHoisting:
    def test_rm_is_pointer_increments(self):
        alu, br = hoisted_index_ops("rm", 10)
        assert alu == 2.0 and br == 0.0

    def test_mo_pays_one_dilation(self):
        alu, br = hoisted_index_ops("mo", 10)
        assert alu == 19.0 and br == 0.0

    def test_mo_constant_in_bits(self):
        assert hoisted_index_ops("mo", 10) == hoisted_index_ops("mo", 12)

    def test_ho_linear_in_bits(self):
        a10, b10 = hoisted_index_ops("ho", 10)
        a12, b12 = hoisted_index_ops("ho", 12)
        assert a12 > a10 and b12 > b10

    def test_unknown_scheme(self):
        with pytest.raises(ValueError):
            hoisted_index_ops("zz", 10)


class TestCycleModel:
    def test_ordering(self):
        rm = cycles_per_iteration("rm", 1024)
        mo = cycles_per_iteration("mo", 1024)
        ho = cycles_per_iteration("ho", 1024)
        assert rm < mo < ho
        # Paper: HO an order of magnitude above RM.
        assert ho > 10 * rm

    def test_paper_calibration_size10(self):
        # Table IV single-thread, size 10, 2.6 GHz: RM 3.3 s, MO 6.2 s,
        # HO 41.4 s => ~8 / 15 / 100 cycles per iteration; model within 25%.
        assert cycles_per_iteration("rm", 1024) == pytest.approx(8.0, rel=0.25)
        assert cycles_per_iteration("mo", 1024) == pytest.approx(15.0, rel=0.25)
        assert cycles_per_iteration("ho", 1024) == pytest.approx(100.0, rel=0.25)

    def test_rejects_tiny_side(self):
        with pytest.raises(ValueError):
            cycles_per_iteration("rm", 1)


class TestComputeSeconds:
    def test_scales_with_cube(self):
        t1 = kernel_compute_seconds("rm", 512, 2.6)
        t2 = kernel_compute_seconds("rm", 1024, 2.6)
        assert t2 / t1 == pytest.approx(8.0, rel=0.05)

    def test_inverse_in_frequency(self):
        t_lo = kernel_compute_seconds("mo", 512, 1.3)
        t_hi = kernel_compute_seconds("mo", 512, 2.6)
        assert t_lo / t_hi == pytest.approx(2.0, rel=1e-9)

    def test_inverse_in_threads(self):
        t1 = kernel_compute_seconds("ho", 512, 2.6, threads=1)
        t8 = kernel_compute_seconds("ho", 512, 2.6, threads=8)
        assert t1 / t8 == pytest.approx(8.0, rel=1e-9)

    def test_validation(self):
        with pytest.raises(ValueError):
            kernel_compute_seconds("rm", 512, 0)
        with pytest.raises(ValueError):
            kernel_compute_seconds("rm", 512, 2.6, threads=0)
