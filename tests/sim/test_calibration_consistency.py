"""End-to-end calibration consistency: analytic model vs exact simulator.

The analytic model's shipped miss curves claim to summarize the exact
trace-driven simulator; these tests close the loop by measuring ``mpi``
with the simulator at scaled machine/problem pairs and comparing against
``misses_per_iteration`` at the same capacity ratio.
"""

import pytest

from repro.sim import (
    CacheSpec,
    MachineSpec,
    MulticoreTraceSim,
    misses_per_iteration,
)
from repro.trace import MatmulTraceSpec


def measured_mpi(scheme: str, n: int, l3_bytes: int) -> float:
    machine = MachineSpec(
        name="cal",
        sockets=1,
        cores_per_socket=1,
        l1=CacheSpec("L1", 512, 64, 1),
        l2=CacheSpec("L2", 2048, 64, 8),
        l3=CacheSpec("L3", l3_bytes, 64, 16),
    )
    sim = MulticoreTraceSim(machine, MatmulTraceSpec.uniform(n, scheme))
    mid = n // 2
    sim.run(rows=[mid - 1])  # warm-up
    before = sim.result().l3.misses
    sim.run(rows=[mid, mid + 1])
    return (sim.result().l3.misses - before) / (2 * n * n)


@pytest.mark.slow
class TestCalibrationConsistency:
    @pytest.mark.parametrize("scheme", ["rm", "mo", "ho"])
    def test_streaming_regime(self, scheme):
        # u = 6: all schemes past their transitions.
        n, l3 = 128, 64 * 1024
        u = 3 * 8 * n * n / l3
        measured = measured_mpi(scheme, n, l3)
        modelled = misses_per_iteration(scheme, u)
        assert modelled == pytest.approx(measured, rel=0.5), (
            scheme, u, measured, modelled
        )

    @pytest.mark.parametrize("scheme", ["rm", "mo", "ho"])
    def test_in_cache_regime(self, scheme):
        # u = 0.75: everything fits; both must be tiny.
        n, l3 = 64, 128 * 1024
        measured = measured_mpi(scheme, n, l3)
        modelled = misses_per_iteration(scheme, 3 * 8 * n * n / l3)
        assert measured < 0.02
        assert modelled < 0.02

    def test_transition_located_consistently(self):
        # The model's RM transition (center ~3.4) must match where the
        # simulator's measured mpi crosses half its plateau.
        n = 128
        below = measured_mpi("rm", n, 256 * 1024)  # u = 1.5
        above = measured_mpi("rm", n, 64 * 1024)   # u = 6
        assert below < 0.2
        assert above > 0.8
        assert misses_per_iteration("rm", 1.5) < 0.2
        assert misses_per_iteration("rm", 6.0) > 0.8
