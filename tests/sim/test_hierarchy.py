"""Multi-level hierarchy and socket simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import CacheSpec, MachineSpec, SocketSim, scaled_machine
from repro.sim.hierarchy import CoreHierarchy
from repro.trace import TraceChunk, sequential_trace


@pytest.fixture
def tiny_machine():
    return MachineSpec(
        name="tiny",
        sockets=2,
        cores_per_socket=2,
        l1=CacheSpec("L1", 512, 64, 2),
        l2=CacheSpec("L2", 1024, 64, 2),
        l3=CacheSpec("L3", 4096, 64, 4),
    )


class TestCoreHierarchy:
    def test_l1_filters_l2(self, tiny_machine):
        h = CoreHierarchy(tiny_machine)
        chunk = TraceChunk.reads(np.arange(64, dtype=np.uint64) * 8)
        h.access_chunk(chunk)  # 8 lines: all L1-resident
        h.access_chunk(chunk)  # second pass hits entirely in L1
        assert h.l1.stats.accesses == 128
        assert h.l2.stats.accesses == 8  # only the 8 cold misses reach L2

    def test_inclusive_behaviour(self, tiny_machine):
        h = CoreHierarchy(tiny_machine)
        lines, _, _ = h.access_chunk(
            TraceChunk.reads(np.arange(256, dtype=np.uint64) * 64)
        )
        # Streaming 256 distinct lines misses everywhere.
        assert h.l1.stats.misses == 256
        assert h.l2.stats.misses == 256
        assert len(lines) == 256


class TestSocketSim:
    def test_private_l1_shared_l3(self, tiny_machine):
        s = SocketSim(tiny_machine, n_cores=2)
        chunk = TraceChunk.reads(np.arange(8, dtype=np.uint64) * 64)
        s.access_chunk(0, chunk)
        s.access_chunk(1, chunk)
        r = s.result()
        # Each core misses privately, but the second core's stream hits in
        # the shared L3.
        assert r.l1.misses == 16
        assert r.l3.accesses == 16
        assert r.l3.misses == 8
        assert r.dram_lines == 8

    def test_core_out_of_range(self, tiny_machine):
        s = SocketSim(tiny_machine, n_cores=1)
        with pytest.raises(SimulationError):
            s.access_chunk(1, TraceChunk.reads(np.array([0])))

    def test_too_many_cores(self, tiny_machine):
        with pytest.raises(SimulationError):
            SocketSim(tiny_machine, n_cores=3)

    def test_reset(self, tiny_machine):
        s = SocketSim(tiny_machine, n_cores=1)
        s.access_chunk(0, TraceChunk.reads(np.array([0])))
        s.reset()
        r = s.result()
        assert r.l1.accesses == 0
        assert r.dram_lines == 0

    def test_result_dram_bytes(self, tiny_machine):
        s = SocketSim(tiny_machine, n_cores=1)
        s.access_chunk(0, TraceChunk.reads(np.arange(4, dtype=np.uint64) * 64))
        assert s.result().dram_bytes == 4 * 64

    def test_result_dram_bytes_non64_line(self):
        # dram_bytes must scale with the configured line size, not a
        # hardcoded 64.
        m = MachineSpec(
            name="tiny128",
            sockets=1,
            cores_per_socket=1,
            l1=CacheSpec("L1", 1024, 128, 2),
            l2=CacheSpec("L2", 2048, 128, 2),
            l3=CacheSpec("L3", 8192, 128, 4),
        )
        s = SocketSim(m, n_cores=1)
        s.access_chunk(0, TraceChunk.reads(np.arange(4, dtype=np.uint64) * 128))
        r = s.result()
        assert r.line_bytes == 128
        assert r.dram_bytes == 4 * 128
