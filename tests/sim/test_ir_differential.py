"""Differential suite: IR-streamed traces vs legacy in-memory chunk paths.

The acceptance bar for the columnar trace IR is *bit identity*: running
any consumer from a cached, mmap-streamed IR file must be
indistinguishable — every counter of every cache level, per-tag
attribution, DRAM traffic, and post-run cache contents — from the legacy
path that regenerates chunks in memory.  The matrix covers
{exact, fast} engines x {numpy, numba, c} backends x {1, 2, 4} workers,
plus the cachegrind attributor, the MRC study, and the worker residue
frames (pack/unpack_miss_stream) with fault injection.

Spawn-safe: module-level file, no __main__ tricks.
"""

import numpy as np
import pytest

from repro.errors import TraceError
from repro.perf import CachegrindSim
from repro.sim import (
    CACHEGRIND_LIKE,
    CacheSpec,
    MachineSpec,
    MulticoreTraceSim,
    backend_available,
    pack_miss_stream,
    scaled_machine,
    unpack_miss_stream,
)
from repro.trace import (
    MatmulTraceSpec,
    TraceIRReader,
    matmul_trace_ir,
    naive_matmul_trace,
)
from repro.experiments import run_mrc_study

from tests.sim.test_multicore_parallel import (
    assert_same_contents,
    cache_contents,
    machine,
    result_key,
)

#: numpy always runs; compiled legs skip on hosts without the backend.
BACKEND_PARAMS = ["numpy"] + [
    pytest.param(
        b,
        marks=pytest.mark.skipif(
            not backend_available(b), reason=f"{b} backend unavailable"
        ),
    )
    for b in ("numba", "c")
]


class TestMulticoreIdentity:
    """IR-fed parallel workers vs legacy regeneration vs serial oracle."""

    @pytest.mark.parametrize("engine", ["exact", "fast"])
    @pytest.mark.parametrize("backend", BACKEND_PARAMS)
    def test_engine_backend_worker_matrix(self, engine, backend, tmp_path):
        n = 16
        spec = MatmulTraceSpec.uniform(n, "ho")
        m = machine()
        serial = MulticoreTraceSim(
            m, spec, threads=2, sockets_used=2, engine=engine,
            backend=backend,
        )
        rs = serial.run()
        ser_contents = cache_contents(serial)
        for workers in (1, 2, 4):
            legacy = MulticoreTraceSim(
                m, spec, threads=2, sockets_used=2, engine=engine,
                backend=backend, workers=workers,
            )
            rl = legacy.run()
            streamed = MulticoreTraceSim(
                m, spec, threads=2, sockets_used=2, engine=engine,
                backend=backend, workers=workers,
                trace_cache=str(tmp_path / "cache"),
            )
            ri = streamed.run()
            assert result_key(ri) == result_key(rl), (engine, backend, workers)
            assert result_key(ri) == result_key(rs), (engine, backend, workers)
            assert_same_contents(cache_contents(streamed), ser_contents)

    def test_cyclic_schedule_and_more_threads(self, tmp_path):
        spec = MatmulTraceSpec.uniform(16, "mo")
        m = machine()
        serial = MulticoreTraceSim(
            m, spec, threads=8, sockets_used=1, schedule="cyclic",
        )
        rs = serial.run()
        streamed = MulticoreTraceSim(
            m, spec, threads=8, sockets_used=1, schedule="cyclic",
            workers=4, trace_cache=str(tmp_path),
        )
        assert result_key(streamed.run()) == result_key(rs)
        assert_same_contents(cache_contents(streamed), cache_contents(serial))

    def test_warm_cache_second_run_identical(self, tmp_path):
        """Run twice against the same cache dir: hit path == build path."""
        spec = MatmulTraceSpec.uniform(16, "rm")
        m = machine()
        keys = []
        for _ in range(2):
            sim = MulticoreTraceSim(
                m, spec, threads=2, sockets_used=2, workers=2,
                trace_cache=str(tmp_path),
            )
            keys.append(result_key(sim.run()))
        assert keys[0] == keys[1]


class TestCachegrindIdentity:
    @pytest.mark.parametrize("scheme", ["rm", "mo", "ho"])
    def test_run_ir_matches_run(self, scheme, tmp_path):
        m = scaled_machine(CACHEGRIND_LIKE, 256)
        spec = MatmulTraceSpec.uniform(32, scheme)
        rows = [7, 8, 21]
        legacy = CachegrindSim(m).run(naive_matmul_trace(spec, rows=rows))
        path = matmul_trace_ir(
            spec, rows=rows, line_bytes=m.l1.line_bytes,
            cache_dir=str(tmp_path),
        )
        with TraceIRReader(path) as reader:
            streamed = CachegrindSim(m).run_ir(reader)
        assert streamed == legacy

    def test_line_bytes_mismatch_rejected(self, tmp_path):
        m = scaled_machine(CACHEGRIND_LIKE, 256)
        spec = MatmulTraceSpec.uniform(16, "rm")
        path = matmul_trace_ir(
            spec, rows=[4], line_bytes=m.l1.line_bytes * 2,
            cache_dir=str(tmp_path),
        )
        with TraceIRReader(path) as reader:
            with pytest.raises(TraceError):
                CachegrindSim(m).run_ir(reader)


class TestMrcIdentity:
    def test_trace_cache_matches_legacy(self, tmp_path):
        kwargs = dict(
            n=16, schemes=("rm", "ho"), u_values=(1.0, 4.0), sample_rows=2,
        )
        legacy = run_mrc_study(**kwargs)
        streamed = run_mrc_study(**kwargs, trace_cache=str(tmp_path))
        assert len(streamed) == len(legacy)
        for a, b in zip(streamed, legacy):
            assert a == b


class TestResidueFrames:
    """Worker->parent miss residue uses the same IR frame codec."""

    def test_roundtrip(self):
        lines = np.array([5, 5, 9, 2**40, 0], dtype=np.uint64)
        w = np.array([1, 0, 0, 1, 1], dtype=bool)
        t = np.array([0, 1, 2, 1, 0], dtype=np.uint8)
        L, W, T = unpack_miss_stream(pack_miss_stream(lines, w, t))
        np.testing.assert_array_equal(L, lines)
        np.testing.assert_array_equal(W, w)
        np.testing.assert_array_equal(T, t)

    def test_corruption_detected(self):
        lines = np.arange(64, dtype=np.uint64)
        w = np.zeros(64, dtype=bool)
        t = np.ones(64, dtype=np.uint8)
        blob = bytearray(pack_miss_stream(lines, w, t))
        blob[-3] ^= 0x40  # flip a payload bit
        with pytest.raises(TraceError):
            unpack_miss_stream(bytes(blob))
