"""Wall-power meter model and the paper's 38% component share."""

import pytest

from repro.errors import SimulationError
from repro.sim import PowerMeter, SANDY_BRIDGE_E5_2670 as M
from repro.sim import power_breakdown


class TestPowerMeter:
    def test_wall_exceeds_components(self):
        p = power_breakdown(M, 2.6, 16, 2, 1.0, 10.0)
        r = PowerMeter().read(p)
        assert r.wall_w > r.component_w

    def test_full_load_component_share_near_38_percent(self):
        # Paper Section IV-B: "the memory and the two CPUs account for
        # approximately 38% of the total system consumption when all cores
        # are utilized."
        p = power_breakdown(M, 2.6, 16, 2, compute_fraction=0.8, demand_gbps=30.0)
        r = PowerMeter().read(p)
        assert r.component_fraction == pytest.approx(0.38, abs=0.06)

    def test_psu_efficiency_direction(self):
        p = power_breakdown(M, 2.6, 16, 2, 1.0, 10.0)
        lossy = PowerMeter(psu_efficiency=0.80).read(p)
        ideal = PowerMeter(psu_efficiency=1.00).read(p)
        assert lossy.wall_w > ideal.wall_w

    def test_validation(self):
        with pytest.raises(SimulationError):
            PowerMeter(psu_efficiency=0.0)
        with pytest.raises(SimulationError):
            PowerMeter(rest_of_system_w=-1.0)
