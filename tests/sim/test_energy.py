"""Power model: TDP envelope, frequency scaling, domain relationships."""

import pytest

from repro.errors import SimulationError
from repro.sim import SANDY_BRIDGE_E5_2670 as M
from repro.sim import PowerModelParams, power_breakdown, voltage


class TestVoltage:
    def test_curve_endpoints(self):
        assert voltage(1.2) == pytest.approx(0.65, abs=0.02)
        assert voltage(2.6) == pytest.approx(0.95, abs=0.02)

    def test_monotone(self):
        assert voltage(1.2) < voltage(1.8) < voltage(2.6) < voltage(3.3)

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            voltage(0)


class TestPowerBreakdown:
    def test_full_load_near_tdp(self):
        # 8 compute-bound cores at 2.6 GHz: one socket package should be in
        # the TDP neighbourhood (115 W) without exceeding it grossly.
        p = power_breakdown(M, 2.6, threads=8, sockets_used=1,
                            compute_fraction=1.0, demand_gbps=5.0)
        one_socket = p.package_w - (
            PowerModelParams().uncore_static_w + 8 * PowerModelParams().core_idle_w
        )  # subtract the idle second socket
        assert 80 <= one_socket <= 130

    def test_pp0_below_package(self):
        p = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
        assert p.pp0_w < p.package_w

    def test_cubic_ish_frequency_scaling(self):
        # Dynamic power grows super-linearly in f (V rises with f).
        lo = power_breakdown(M, 1.2, 8, 1, 1.0, 5.0)
        hi = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
        assert hi.pp0_w / lo.pp0_w > 2.6 / 1.2

    def test_stalled_cores_draw_less(self):
        busy = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
        stalled = power_breakdown(M, 2.6, 8, 1, 0.1, 40.0)
        assert stalled.pp0_w < busy.pp0_w

    def test_dram_small_and_stable(self):
        # Paper: DRAM power small compared to cores (factor ~4 at high f)
        # and nearly constant across configurations.
        idle_mem = power_breakdown(M, 2.6, 8, 1, 1.0, 2.0)
        busy_mem = power_breakdown(M, 2.6, 8, 1, 0.2, 40.0)
        assert busy_mem.dram_w < 2.2 * idle_mem.dram_w
        assert idle_mem.pp0_w / idle_mem.dram_w > 3.0

    def test_dual_socket_more_power(self):
        single = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
        dual = power_breakdown(M, 2.6, 16, 2, 1.0, 5.0)
        assert dual.package_w > single.package_w

    def test_energy_integration(self):
        p = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
        e = p.energies(10.0)
        assert e.package_j == pytest.approx(10 * p.package_w)
        assert e.total_j == pytest.approx(e.package_j + e.dram_j)

    def test_validation(self):
        with pytest.raises(SimulationError):
            power_breakdown(M, 2.6, 8, 1, 1.5, 5.0)
        with pytest.raises(SimulationError):
            power_breakdown(M, 2.6, 0, 1, 1.0, 5.0)
        with pytest.raises(SimulationError):
            p = power_breakdown(M, 2.6, 8, 1, 1.0, 5.0)
            p.energies(-1.0)
