"""Property-based sanity of the analytic model (hypothesis)."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.sim import PerformanceModel

MODEL = PerformanceModel()

schemes = st.sampled_from(["rm", "mo", "ho"])
sizes = st.sampled_from([1024, 2048, 4096])
freqs = st.sampled_from([1.2, 1.8, 2.6])
single_threads = st.sampled_from([1, 2, 4, 8])


@settings(max_examples=60, deadline=None)
@given(scheme=schemes, n=sizes, freq=freqs, threads=single_threads)
def test_outputs_positive_and_consistent(scheme, n, freq, threads):
    p = MODEL.predict(scheme, n, freq, threads, 1)
    assert p.seconds > 0
    assert p.compute_seconds > 0
    assert p.memory_seconds >= 0
    assert p.seconds >= max(p.compute_seconds, p.memory_seconds)
    assert p.energy.package_j > p.energy.pp0_j > 0
    assert p.energy.dram_j > 0
    assert 0 <= p.compute_fraction <= 1


@settings(max_examples=40, deadline=None)
@given(scheme=schemes, n=sizes, freq=freqs)
def test_time_decreases_with_threads(scheme, n, freq):
    times = [MODEL.predict(scheme, n, freq, p, 1).seconds for p in (1, 2, 4, 8)]
    assert all(a > b for a, b in zip(times, times[1:]))


@settings(max_examples=40, deadline=None)
@given(scheme=schemes, n=sizes, threads=single_threads)
def test_time_decreases_with_frequency(scheme, n, threads):
    times = [MODEL.predict(scheme, n, f, threads, 1).seconds for f in (1.2, 1.8, 2.6)]
    assert all(a > b for a, b in zip(times, times[1:]))


@settings(max_examples=40, deadline=None)
@given(scheme=schemes, freq=freqs, threads=single_threads)
def test_time_grows_with_size(scheme, freq, threads):
    times = [
        MODEL.predict(scheme, n, freq, threads, 1).seconds
        for n in (1024, 2048, 4096)
    ]
    # Superlinear (at least cubic / p) growth in n.
    assert times[1] > 7 * times[0]
    assert times[2] > 7 * times[1]


@settings(max_examples=30, deadline=None)
@given(n=sizes, freq=freqs, threads=single_threads)
def test_scheme_compute_ordering_invariant(n, freq, threads):
    rm = MODEL.predict("rm", n, freq, threads, 1)
    mo = MODEL.predict("mo", n, freq, threads, 1)
    ho = MODEL.predict("ho", n, freq, threads, 1)
    # Compute time always ranks RM < MO < HO regardless of configuration.
    assert rm.compute_seconds < mo.compute_seconds < ho.compute_seconds
    # Locality ranks the other way — up to ~10% slack near the in-cache
    # floor, where compulsory misses are layout-independent and the fitted
    # curves cross within noise.
    assert ho.llc_misses <= mo.llc_misses * 1.10
    assert mo.llc_misses <= rm.llc_misses * 1.10


@settings(max_examples=30, deadline=None)
@given(scheme=schemes, n=sizes, freq=freqs)
def test_dual_socket_never_reduces_package_power(scheme, n, freq):
    single = MODEL.predict(scheme, n, freq, 8, 1)
    dual = MODEL.predict(scheme, n, freq, 16, 2)
    assert dual.power.package_w > single.power.package_w
