"""Thread placement, row partitioning and multicore trace simulation."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import (
    CacheSpec,
    MachineSpec,
    MulticoreTraceSim,
    ThreadPlacement,
    partition_rows,
)
from repro.trace import MatmulTraceSpec, trace_length


@pytest.fixture
def machine():
    return MachineSpec(
        name="mini",
        sockets=2,
        cores_per_socket=4,
        l1=CacheSpec("L1", 512, 64, 2),
        l2=CacheSpec("L2", 2048, 64, 4),
        l3=CacheSpec("L3", 16 * 1024, 64, 8),
    )


class TestPartition:
    def test_even(self):
        parts = partition_rows(8, 4)
        assert [list(p) for p in parts] == [[0, 1], [2, 3], [4, 5], [6, 7]]

    def test_remainder_to_early_threads(self):
        parts = partition_rows(10, 4)
        assert [len(p) for p in parts] == [3, 3, 2, 2]
        assert parts[0][0] == 0 and parts[-1][-1] == 9

    def test_more_threads_than_rows(self):
        parts = partition_rows(2, 4)
        assert [len(p) for p in parts] == [1, 1, 0, 0]

    def test_invalid(self):
        with pytest.raises(SimulationError):
            partition_rows(0, 2)


class TestPlacement:
    def test_single_socket(self, machine):
        p = ThreadPlacement.pack(machine, 4, 1)
        assert all(s == 0 for s, _ in p.assignments)
        assert [c for _, c in p.assignments] == [0, 1, 2, 3]

    def test_dual_socket_alternates(self, machine):
        p = ThreadPlacement.pack(machine, 4, 2)
        assert [s for s, _ in p.assignments] == [0, 1, 0, 1]
        assert [c for _, c in p.assignments] == [0, 0, 1, 1]

    def test_overcommit_rejected(self, machine):
        with pytest.raises(SimulationError):
            ThreadPlacement.pack(machine, 5, 1)

    def test_paper_configs(self, machine):
        # 1s, 4s, 2d, 8d-equivalent all construct.
        for threads, sockets in ((1, 1), (4, 1), (2, 2), (8, 2)):
            p = ThreadPlacement.pack(machine, threads, sockets)
            assert p.threads == threads


class TestMulticoreSim:
    def test_total_accesses_partitioned(self, machine):
        spec = MatmulTraceSpec.uniform(16, "rm")
        sim = MulticoreTraceSim(machine, spec, threads=4, sockets_used=2)
        r = sim.run()
        assert r.l1.accesses == trace_length(16)

    def test_single_vs_multi_same_workload(self, machine):
        spec = MatmulTraceSpec.uniform(16, "mo")
        r1 = MulticoreTraceSim(machine, spec, 1, 1).run()
        r4 = MulticoreTraceSim(machine, spec, 4, 1).run()
        assert r1.l1.accesses == r4.l1.accesses
        # Shared read-only operands mean more private cold misses with more
        # cores, never fewer.
        assert r4.l1.misses >= r1.l1.misses

    def test_dual_socket_splits_l3_traffic(self, machine):
        spec = MatmulTraceSpec.uniform(16, "rm")
        sim = MulticoreTraceSim(machine, spec, threads=2, sockets_used=2)
        sim.run()
        a0 = sim.sockets[0].l3.stats.accesses
        a1 = sim.sockets[1].l3.stats.accesses
        assert a0 > 0 and a1 > 0

    def test_sampled_rows(self, machine):
        spec = MatmulTraceSpec.uniform(16, "ho")
        sim = MulticoreTraceSim(machine, spec, threads=2, sockets_used=1)
        r = sim.run(rows=[7, 8])
        assert r.l1.accesses == trace_length(16, rows=[7, 8])

    def test_result_idempotent(self, machine):
        spec = MatmulTraceSpec.uniform(8, "rm")
        sim = MulticoreTraceSim(machine, spec, 2, 1)
        sim.run()
        r1 = sim.result()
        r2 = sim.result()
        assert r1.l3.misses == r2.l3.misses
        assert r1.l1.accesses == r2.l1.accesses

    def test_rm_misses_exceed_mo_out_of_cache(self, machine):
        # The paper's core locality effect at trace level: out-of-cache,
        # row-major suffers far more LLC misses than Morton.
        n = 64  # footprint 96 KB >> 16 KB L3
        rm = MulticoreTraceSim(machine, MatmulTraceSpec.uniform(n, "rm"), 1, 1).run(
            rows=[32, 33]
        )
        mo = MulticoreTraceSim(machine, MatmulTraceSpec.uniform(n, "mo"), 1, 1).run(
            rows=[32, 33]
        )
        assert rm.l3.misses > 3 * mo.l3.misses
