"""Phase-resolved power timelines and their sampled integration."""

import pytest

from repro.errors import SimulationError
from repro.perf import power_from_samples, sample_rapl_counter
from repro.sim import PerformanceModel, run_timeline


@pytest.fixture(scope="module")
def prediction():
    return PerformanceModel().predict("mo", 2048, "ondemand", 8, 1)


class TestTimeline:
    def test_phases(self, prediction):
        tl = run_timeline(prediction)
        names = [p.name for p in tl.phases]
        assert names == ["governor-ramp", "steady", "idle-tail"]

    def test_duration(self, prediction):
        tl = run_timeline(prediction, idle_tail_s=0.5)
        assert tl.duration_s == pytest.approx(prediction.seconds + 0.5)

    def test_ramp_power_below_steady(self, prediction):
        tl = run_timeline(prediction)
        ramp, steady, idle = tl.phases
        assert ramp.package_w < steady.package_w
        assert idle.package_w < ramp.package_w

    def test_lookup(self, prediction):
        tl = run_timeline(prediction)
        assert tl.package_power(0.01) == tl.phases[0].package_w
        assert tl.package_power(1.0) == tl.phases[1].package_w
        # Past the end: stays at the last (idle) level.
        assert tl.package_power(tl.duration_s + 10) == tl.phases[-1].package_w

    def test_negative_time_rejected(self, prediction):
        tl = run_timeline(prediction)
        with pytest.raises(SimulationError):
            tl.package_power(-1.0)

    def test_no_ramp_option(self, prediction):
        tl = run_timeline(prediction, governor_ramp=False, idle_tail_s=0.0)
        assert [p.name for p in tl.phases] == ["steady"]
        assert tl.duration_s == pytest.approx(prediction.seconds)

    def test_invalid_tail(self, prediction):
        with pytest.raises(SimulationError):
            run_timeline(prediction, idle_tail_s=-1.0)

    def test_dram_power_positive_everywhere(self, prediction):
        tl = run_timeline(prediction)
        for t in (0.01, 1.0, tl.duration_s - 0.01):
            assert tl.dram_power(t) > 0


class TestSampledIntegration:
    def test_trapezoid_recovers_varying_trace(self, prediction):
        # The paper's full chain against a non-constant power signal:
        # quantized wrapping counter, 10 Hz samples, trapezoid — within
        # 2% of the exact piecewise energy (edges cost a little).
        tl = run_timeline(prediction, idle_tail_s=1.0)
        ts, raw = sample_rapl_counter(tl.package_power, duration_s=tl.duration_s)
        log = power_from_samples(ts, raw)
        assert log.energy_j == pytest.approx(tl.package_energy_j, rel=0.02)

    def test_sampling_sees_falling_edge(self, prediction):
        tl = run_timeline(prediction, idle_tail_s=1.0)
        ts, raw = sample_rapl_counter(tl.package_power, duration_s=tl.duration_s)
        log = power_from_samples(ts, raw)
        # The last samples sit at the idle floor, far below the peak.
        assert log.power_w[-1] < log.power_w.max() / 2
