"""Next-line prefetcher and loop-schedule ablation features."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim import Cache, CacheSpec, CacheStats, MulticoreTraceSim, partition_rows_cyclic
from repro.sim.config import MachineSpec
from repro.trace import MatmulTraceSpec, TraceChunk, sequential_trace, trace_length


class TestNextLinePrefetch:
    def test_sequential_stream_mostly_hits(self):
        # With next-line prefetch, a sequential line stream demand-misses
        # only on lines the prefetcher hasn't covered yet (the first one).
        c = Cache(CacheSpec("t", 8192, 64, 8), prefetch="next-line")
        lines = np.arange(64, dtype=np.uint64) * 64
        c.access_chunk(TraceChunk.reads(lines))
        assert c.stats.misses < 64 // 2 + 2
        assert c.stats.prefetches > 0

    def test_no_prefetch_baseline(self):
        c = Cache(CacheSpec("t", 8192, 64, 8))
        lines = np.arange(64, dtype=np.uint64) * 64
        c.access_chunk(TraceChunk.reads(lines))
        assert c.stats.misses == 64
        assert c.stats.prefetches == 0

    def test_random_stream_unhelped(self):
        # Strided far accesses gain nothing; prefetches just churn.
        spec = CacheSpec("t", 4096, 64, 4)
        base = Cache(spec)
        pf = Cache(spec, prefetch="next-line")
        addrs = (np.arange(200, dtype=np.uint64) * 8192)
        chunk = TraceChunk.reads(addrs)
        base.access_chunk(chunk)
        pf.access_chunk(chunk)
        assert pf.stats.misses == base.stats.misses

    def test_invalid_mode_rejected(self):
        with pytest.raises(SimulationError):
            Cache(CacheSpec("t", 1024, 64, 2), prefetch="stride")

    def test_prefetch_stats_merge(self):
        a = CacheStats(prefetches=3)
        b = CacheStats(prefetches=4)
        a.merge(b)
        assert a.prefetches == 7


class TestCyclicSchedule:
    def test_partition_rows_cyclic(self):
        parts = partition_rows_cyclic(10, 3)
        assert [list(p) for p in parts] == [[0, 3, 6, 9], [1, 4, 7], [2, 5, 8]]

    def test_covers_all_rows(self):
        parts = partition_rows_cyclic(17, 4)
        allrows = sorted(r for p in parts for r in p)
        assert allrows == list(range(17))

    def test_rejects_invalid(self):
        with pytest.raises(SimulationError):
            partition_rows_cyclic(0, 2)

    @pytest.fixture
    def machine(self):
        return MachineSpec(
            name="mini", sockets=1, cores_per_socket=4,
            l1=CacheSpec("L1", 512, 64, 2),
            l2=CacheSpec("L2", 2048, 64, 4),
            l3=CacheSpec("L3", 16 * 1024, 64, 8),
        )

    def test_schedules_same_total_work(self, machine):
        spec = MatmulTraceSpec.uniform(32, "mo")
        static = MulticoreTraceSim(machine, spec, 4, 1, schedule="static").run()
        cyclic = MulticoreTraceSim(machine, spec, 4, 1, schedule="cyclic").run()
        assert static.l1.accesses == cyclic.l1.accesses == trace_length(32)

    def test_unknown_schedule_rejected(self, machine):
        with pytest.raises(SimulationError):
            MulticoreTraceSim(
                machine, MatmulTraceSpec.uniform(8, "rm"), 2, 1, schedule="guided"
            )
