"""Governors: fixed points and ondemand/Turbo behaviour."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    FixedGovernor,
    ONDEMAND,
    OndemandGovernor,
    SANDY_BRIDGE_E5_2670 as M,
    make_governor,
)


class TestFixed:
    @pytest.mark.parametrize("ghz", [1.2, 1.8, 2.6])
    def test_returns_pinned(self, ghz):
        g = FixedGovernor(ghz)
        assert g.frequency_ghz(M, 8) == ghz

    def test_label(self):
        assert FixedGovernor(1.2).label == "1200MHz"
        assert FixedGovernor(2.6).label == "2600MHz"

    def test_rejects_nonpositive(self):
        with pytest.raises(SimulationError):
            FixedGovernor(0)


class TestOndemand:
    def test_exceeds_nominal(self):
        # Turbo always clears the 2.6 GHz base under load.
        g = OndemandGovernor()
        for cores in (1, 4, 8):
            assert g.frequency_ghz(M, cores) > 2.6

    def test_single_core_max_turbo(self):
        assert OndemandGovernor().frequency_ghz(M, 1) == pytest.approx(
            M.turbo_1core_ghz
        )

    def test_allcore_turbo(self):
        assert OndemandGovernor().frequency_ghz(M, 8) == pytest.approx(
            M.turbo_allcore_ghz
        )

    def test_monotone_decreasing_in_cores(self):
        g = OndemandGovernor()
        freqs = [g.frequency_ghz(M, c) for c in (1, 2, 4, 8)]
        assert freqs == sorted(freqs, reverse=True)

    def test_label(self):
        assert OndemandGovernor().label == ONDEMAND

    def test_rejects_nonpositive_cores(self):
        with pytest.raises(SimulationError):
            OndemandGovernor().frequency_ghz(M, 0)


class TestFactory:
    def test_float(self):
        g = make_governor(1.8)
        assert isinstance(g, FixedGovernor)
        assert g.ghz == 1.8

    def test_string(self):
        assert isinstance(make_governor("ondemand"), OndemandGovernor)
        assert isinstance(make_governor("ONDEMAND"), OndemandGovernor)

    def test_unknown_string(self):
        with pytest.raises(SimulationError):
            make_governor("performance")
