"""Stream-locality metrics (chunk utilization, run-length histograms)."""

import numpy as np
import pytest

from repro.errors import SimulationError
from repro.sim.locality import LocalityMeter, RunLengthStats, run_lengths
from repro.trace.events import TraceChunk, concat_chunks


class TestRunLengths:
    def test_empty(self):
        assert run_lengths(np.array([])).size == 0

    def test_single_run(self):
        np.testing.assert_array_equal(run_lengths(np.arange(5)), [5])

    def test_broken_runs(self):
        np.testing.assert_array_equal(
            run_lengths(np.array([0, 1, 2, 10, 11, 20])), [3, 2, 1]
        )

    def test_duplicates_break_runs(self):
        np.testing.assert_array_equal(
            run_lengths(np.array([3, 3, 4])), [1, 2]
        )


class TestRunLengthStats:
    def test_accumulates(self):
        s = RunLengthStats()
        s.observe(np.array([3, 1, 3]))
        s.observe(np.array([1]))
        assert s.counts == {1: 2, 3: 2}
        assert s.n_runs == 4
        assert s.total == 8
        assert s.mean == 2.0
        assert s.max == 3

    def test_empty(self):
        s = RunLengthStats()
        assert s.n_runs == 0 and s.mean == 0.0 and s.max == 0
        assert s.snapshot()["histogram"] == {}


class TestLocalityMeter:
    def test_rejects_bad_geometry(self):
        with pytest.raises(SimulationError):
            LocalityMeter(line_bytes=48)
        with pytest.raises(SimulationError):
            LocalityMeter(line_bytes=64, chunk_bytes=96)

    def test_sequential_stream_full_utilization(self):
        m = LocalityMeter(line_bytes=64, chunk_bytes=256)
        # 8 lines = 2 whole chunks, touched completely.
        m.observe_lines(np.arange(8, dtype=np.uint64))
        assert m.touched_bytes == 8 * 64
        assert m.fetched_chunks == 2
        assert m.utilization == 1.0
        snap = m.snapshot()
        assert snap["seq_runs"]["runs"] == 1
        assert snap["seq_runs"]["histogram"] == {"8": 1}

    def test_sparse_stream_low_utilization(self):
        m = LocalityMeter(line_bytes=64, chunk_bytes=256)
        # one line per chunk -> 64 of every 256 bytes used
        m.observe_lines(np.array([0, 4, 8], dtype=np.uint64))
        assert m.fetched_chunks == 3
        assert m.utilization == 0.25

    def test_batch_split_equals_whole(self):
        lines = np.array([0, 1, 2, 7, 8, 9, 3, 4, 20], dtype=np.uint64)
        whole = LocalityMeter()
        whole.observe_lines(lines)
        ref = whole.snapshot()
        for cut in range(1, len(lines)):
            m = LocalityMeter()
            m.observe_lines(lines[:cut])
            m.observe_lines(lines[cut:])
            assert m.snapshot() == ref

    def test_run_continues_across_batches(self):
        m = LocalityMeter()
        m.observe_lines(np.array([5, 6], dtype=np.uint64))
        m.observe_lines(np.array([7, 8], dtype=np.uint64))
        assert m.snapshot()["seq_runs"]["histogram"] == {"4": 1}

    def test_snapshot_is_non_destructive(self):
        m = LocalityMeter()
        m.observe_lines(np.array([0, 1], dtype=np.uint64))
        assert m.snapshot() == m.snapshot()
        m.observe_lines(np.array([2], dtype=np.uint64))
        assert m.snapshot()["seq_runs"]["histogram"] == {"3": 1}

    def test_wrap_is_transparent(self):
        chunks = [
            TraceChunk.reads(np.array([0, 64, 128], dtype=np.uint64)),
            TraceChunk.reads(np.array([4096], dtype=np.uint64)),
        ]
        m = LocalityMeter()
        out = list(m.wrap(iter(chunks)))
        assert len(out) == 2
        np.testing.assert_array_equal(
            concat_chunks(out).addr, concat_chunks(chunks).addr
        )
        assert m.accesses == 4

    def test_empty_meter_snapshot(self):
        m = LocalityMeter()
        snap = m.snapshot()
        assert snap["accesses"] == 0
        assert snap["utilization"] == 0.0
        assert snap["seq_runs"]["runs"] == 0
