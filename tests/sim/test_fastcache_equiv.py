"""Differential validation: FastCache must be bit-identical to Cache.

Every test runs the same stream through the reference per-access loop and
the vectorized engine and asserts full equality — all ``CacheStats``
counters including per-tag attribution, the returned miss stream, and the
carried state (probed by continuing with further chunks).  Geometries
cover direct-mapped through fully-associative, and ``tail_threshold`` is
pinned to force each of the wavefront / Python-tail paths explicitly.

The ``backend`` axis (:mod:`repro.sim.backends`) runs the same oracle
comparison through every kernel backend this host provides; compiled
backends that cannot run here are skipped, never silently downgraded —
fallback behaviour has its own explicit tests in ``test_backends.py``.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import Cache, CacheSpec, FastCache, make_cache
from repro.sim.backends import BACKENDS, backend_available
from repro.trace import TraceChunk
from repro.trace.matmul_trace import MatmulTraceSpec, naive_matmul_trace

#: One param per backend; unavailable compiled backends skip (not xfail:
#: absence is an environment fact, not a defect).
BACKEND_PARAMS = [
    pytest.param(
        b,
        marks=pytest.mark.skipif(
            not backend_available(b), reason=f"{b} backend unavailable"
        ),
    )
    for b in BACKENDS
]

STAT_FIELDS = (
    "accesses",
    "write_accesses",
    "hits",
    "misses",
    "read_misses",
    "write_misses",
    "evictions",
    "writebacks",
    "prefetches",
)


def assert_equivalent(spec, chunks, tail_threshold=None, backend="numpy"):
    """Stream ``chunks`` through both engines; assert exact equality."""
    ref = Cache(spec)
    fast = FastCache(spec, backend=backend)
    if tail_threshold is not None:
        fast.tail_threshold = tail_threshold
    for lines, is_write, tags in chunks:
        r = ref.access_lines(lines, is_write, tags)
        f = fast.access_lines(lines, is_write, tags)
        for name, a, b in zip(("lines", "is_write", "tags"), r, f):
            np.testing.assert_array_equal(a, b, err_msg=f"miss stream {name}")
    for field in STAT_FIELDS:
        assert getattr(ref.stats, field) == getattr(fast.stats, field), field
    np.testing.assert_array_equal(ref.stats.tag_accesses, fast.stats.tag_accesses)
    np.testing.assert_array_equal(
        ref.stats.tag_read_misses, fast.stats.tag_read_misses
    )
    np.testing.assert_array_equal(
        ref.stats.tag_write_misses, fast.stats.tag_write_misses
    )
    assert ref.resident_lines == fast.resident_lines


def random_chunks(rng, n_chunks, universe, max_len=500):
    out = []
    for _ in range(n_chunks):
        n = int(rng.integers(0, max_len))
        lines = rng.integers(0, universe, n).astype(np.uint64)
        is_write = rng.random(n) < 0.3
        tags = rng.integers(0, 256, n).astype(np.uint8)
        out.append((lines, is_write, tags))
    return out


GEOMETRIES = [
    # (line_bytes, assoc, n_sets): direct-mapped, skewed, fully-assoc.
    (64, 1, 16),
    (64, 2, 1),
    (64, 4, 4),
    (32, 8, 8),
    (64, 8, 64),
    (64, 16, 1),
]


class TestRandomizedEquivalence:
    @pytest.mark.parametrize("line_bytes,assoc,n_sets", GEOMETRIES)
    @pytest.mark.parametrize("tail_threshold", [0, 10**9])
    @pytest.mark.parametrize("backend", BACKEND_PARAMS)
    def test_geometry_sweep(self, line_bytes, assoc, n_sets, tail_threshold,
                            backend):
        rng = np.random.default_rng(n_sets * 1000 + assoc + tail_threshold % 7)
        spec = CacheSpec("t", n_sets * assoc * line_bytes, line_bytes, assoc)
        # Universe ~8x the cache to exercise evictions and re-installs.
        chunks = random_chunks(rng, 3, 8 * n_sets * assoc + 1)
        assert_equivalent(spec, chunks, tail_threshold, backend=backend)

    def test_mixed_tail_cutover(self):
        # A threshold between 1 and the set count exercises the wavefront
        # -> Python-tail handoff inside one chunk: a few hot sets carry
        # much longer subsequences than the rest.
        rng = np.random.default_rng(7)
        spec = CacheSpec("t", 64 * 4 * 64, 64, 4)  # 64 sets
        skew = rng.integers(0, 8, 4000) * 64 + rng.integers(0, 64, 4000)
        flat = rng.integers(0, 64 * 40, 2000)
        lines = np.concatenate([skew, flat])[rng.permutation(6000)].astype(np.uint64)
        is_write = rng.random(6000) < 0.4
        tags = rng.integers(0, 256, 6000).astype(np.uint8)
        assert_equivalent(spec, [(lines, is_write, tags)], tail_threshold=16)

    def test_streaming_state_carryover(self):
        # Many small chunks: boundaries land mid-reuse so carried MRU
        # order and dirty bits decide later hits and writebacks.
        rng = np.random.default_rng(11)
        spec = CacheSpec("t", 16 * 4 * 64, 64, 4)
        chunks = random_chunks(rng, 12, 200, max_len=120)
        for threshold in (0, 3, 10**9):
            assert_equivalent(spec, chunks, threshold)

    def test_fully_associative_streaming(self):
        rng = np.random.default_rng(13)
        spec = CacheSpec("t", 32 * 64, 64, 32)  # one set, 32 ways
        chunks = random_chunks(rng, 8, 200, max_len=300)
        assert_equivalent(spec, chunks)

    def test_all_tags_attributed(self):
        rng = np.random.default_rng(17)
        spec = CacheSpec("t", 8 * 2 * 64, 64, 2)
        n = 4096
        lines = rng.integers(0, 200, n).astype(np.uint64)
        tags = np.arange(n, dtype=np.uint64).astype(np.uint8)  # all 256 tags
        assert_equivalent(spec, [(lines, rng.random(n) < 0.5, tags)])

    @settings(max_examples=60, deadline=None)
    @given(
        data=st.data(),
        assoc_log=st.integers(0, 3),
        sets_log=st.integers(0, 4),
        seed=st.integers(0, 2**31),
    )
    def test_hypothesis_equivalence(self, data, assoc_log, sets_log, seed):
        assoc, n_sets = 1 << assoc_log, 1 << sets_log
        spec = CacheSpec("t", n_sets * assoc * 64, 64, assoc)
        rng = np.random.default_rng(seed)
        universe = data.draw(st.integers(1, 6 * n_sets * assoc + 1))
        chunks = random_chunks(rng, data.draw(st.integers(1, 3)), universe, 300)
        threshold = data.draw(st.sampled_from([0, 2, 10**9]))
        assert_equivalent(spec, chunks, threshold)


class TestMatmulTraceEquivalence:
    """Real workload streams, both engine paths, through a hierarchy level."""

    @pytest.mark.parametrize("scheme", ["rm", "mo", "ho"])
    @pytest.mark.parametrize("backend", BACKEND_PARAMS)
    def test_matmul_ll(self, scheme, backend):
        spec = MatmulTraceSpec.uniform(32, scheme)
        cache = CacheSpec("LL", 16 * 1024, 64, 16)
        chunks = [
            (c.addr >> np.uint64(6), c.is_write, c.tag)
            for c in naive_matmul_trace(spec, rows=[15, 16], cols_per_chunk=16)
        ]
        assert_equivalent(cache, chunks, tail_threshold=4, backend=backend)

    @pytest.mark.slow
    def test_matmul_full_problem_both_paths(self):
        spec = MatmulTraceSpec.uniform(64, "mo")
        cache = CacheSpec("LL", 64 * 1024, 64, 8)
        chunks = [
            (c.addr >> np.uint64(6), c.is_write, c.tag)
            for c in naive_matmul_trace(spec, cols_per_chunk=64)
        ]
        for threshold in (0, 64, 10**9):
            assert_equivalent(cache, chunks, threshold)


class TestInterface:
    def test_rejects_prefetch(self):
        with pytest.raises(SimulationError):
            FastCache(CacheSpec("t", 1024, 64, 4), prefetch="next-line")

    def test_rejects_length_mismatch(self):
        fc = FastCache(CacheSpec("t", 1024, 64, 4))
        with pytest.raises(SimulationError):
            fc.access_lines(np.zeros(3, np.uint64), np.zeros(2, bool))
        with pytest.raises(SimulationError):
            fc.access_lines(
                np.zeros(3, np.uint64), np.zeros(3, bool), np.zeros(1, np.uint8)
            )

    def test_empty_chunk_is_free(self):
        fc = FastCache(CacheSpec("t", 1024, 64, 4))
        lines, w, t = fc.access_lines(np.zeros(0, np.uint64), np.zeros(0, bool))
        assert len(lines) == len(w) == len(t) == 0
        assert fc.stats.accesses == 0

    def test_reset(self):
        fc = FastCache(CacheSpec("t", 1024, 64, 4))
        fc.access_lines(np.arange(64, dtype=np.uint64), np.ones(64, bool))
        assert fc.resident_lines > 0
        fc.reset()
        assert fc.resident_lines == 0
        assert fc.stats.accesses == 0

    def test_access_chunk_wrapper(self):
        fc = FastCache(CacheSpec("t", 1024, 64, 4))
        chunk = TraceChunk.reads(np.array([0, 64, 128, 0], dtype=np.uint64))
        fc.access_chunk(chunk)
        assert fc.stats.accesses == 4
        assert fc.stats.hits == 1

    def test_make_cache_selector(self):
        spec = CacheSpec("t", 1024, 64, 4)
        assert isinstance(make_cache(spec, engine="exact"), Cache)
        assert isinstance(make_cache(spec, engine="fast"), FastCache)
        with pytest.raises(SimulationError):
            make_cache(spec, engine="turbo")

    def test_constructor_tail_threshold(self):
        # Satellite: the crossover is a constructor knob, and every
        # setting is bit-identical — the tail loop and the wavefront are
        # the same algorithm, the threshold only picks which runs.
        spec = CacheSpec("t", 64 * 4 * 64, 64, 4)
        rng = np.random.default_rng(23)
        chunks = random_chunks(rng, 4, 64 * 30, max_len=400)
        baseline = None
        for threshold in (0, 7, 128, 10**9):
            fc = FastCache(spec, tail_threshold=threshold)
            assert fc.tail_threshold == threshold
            streams = [fc.access_lines(*c) for c in chunks]
            key = (
                [tuple(np.asarray(a).tolist()) for s_ in streams for a in s_],
                fc.stats.accesses, fc.stats.misses, fc.stats.evictions,
                fc.stats.writebacks,
            )
            if baseline is None:
                baseline = key
            else:
                assert key == baseline, threshold

    def test_constructor_tail_threshold_rejects_negative(self):
        with pytest.raises(SimulationError):
            FastCache(CacheSpec("t", 1024, 64, 4), tail_threshold=-1)

    def test_make_cache_forwards_backend_and_threshold(self):
        spec = CacheSpec("t", 1024, 64, 4)
        fc = make_cache(spec, engine="fast", backend="numpy", tail_threshold=9)
        assert isinstance(fc, FastCache)
        assert fc.backend == "numpy" and fc.tail_threshold == 9

    def test_make_cache_prefetch_fallback(self, caplog):
        spec = CacheSpec("t", 1024, 64, 4)
        with caplog.at_level("WARNING"):
            c = make_cache(spec, prefetch="next-line", engine="fast")
        assert isinstance(c, Cache)
        assert c.prefetch == "next-line"
        assert any("falling back" in r.message for r in caplog.records)


class TestHierarchyComposition:
    """engine="fast" must compose through the stack with identical results."""

    def test_multicore_sim_engines_agree(self):
        from repro.sim import (
            SANDY_BRIDGE_E5_2670,
            MulticoreTraceSim,
            available_backends,
            scaled_machine,
        )

        machine = scaled_machine(SANDY_BRIDGE_E5_2670, 512)
        spec = MatmulTraceSpec.uniform(32, "mo")
        configs = [("exact", "numpy")] + [
            ("fast", b) for b in available_backends()
        ]
        results = {}
        for engine, backend in configs:
            sim = MulticoreTraceSim(
                machine, spec, threads=2, sockets_used=1, engine=engine,
                backend=backend,
            )
            results[(engine, backend)] = sim.run(rows=[14, 15, 16, 17])
        a = results[("exact", "numpy")]
        for key, b in results.items():
            for level in ("l1", "l2", "l3"):
                for field in STAT_FIELDS:
                    assert getattr(getattr(a, level), field) == getattr(
                        getattr(b, level), field
                    ), (key, level, field)
            assert a.dram_lines == b.dram_lines, key

    def test_cachegrind_sim_engines_agree(self):
        from repro.perf.cachegrind import CachegrindSim
        from repro.sim import CACHEGRIND_LIKE, scaled_machine

        machine = scaled_machine(CACHEGRIND_LIKE, 512)
        spec = MatmulTraceSpec.uniform(32, "ho")
        reports = {}
        for engine in ("exact", "fast"):
            sim = CachegrindSim(machine, engine=engine)
            reports[engine] = sim.run(
                naive_matmul_trace(spec, rows=[15, 16], cols_per_chunk=8)
            )
        assert reports["exact"] == reports["fast"]
