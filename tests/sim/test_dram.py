"""Bandwidth model: latency-bound vs bandwidth-bound regimes, NUMA."""

import pytest

from repro.errors import SimulationError
from repro.sim import SANDY_BRIDGE_E5_2670 as M
from repro.sim import dram_power_watts, effective_bandwidth_gbps, memory_seconds


class TestEffectiveBandwidth:
    def test_single_thread_latency_bound(self):
        bw = effective_bandwidth_gbps(M, 1, 1, 2.6)
        # mlp * line / latency ~ 10 * 64 / 107.7 ns ~ 5.9 GB/s.
        assert bw == pytest.approx(5.9, rel=0.05)
        assert bw < M.dram.bandwidth_gbps

    def test_scales_with_threads_until_cap(self):
        bws = [effective_bandwidth_gbps(M, p, 1, 2.6) for p in (1, 2, 4, 8)]
        assert bws == sorted(bws)
        assert bws[-1] == M.dram.bandwidth_gbps  # capped

    def test_frequency_mildly_helps(self):
        lo = effective_bandwidth_gbps(M, 1, 1, 1.2)
        hi = effective_bandwidth_gbps(M, 1, 1, 2.6)
        assert lo < hi < lo * 1.25

    def test_numa_penalty(self):
        single = effective_bandwidth_gbps(M, 2, 1, 2.6)
        dual = effective_bandwidth_gbps(M, 2, 2, 2.6)
        assert dual < single

    def test_validation(self):
        with pytest.raises(SimulationError):
            effective_bandwidth_gbps(M, 0, 1, 2.6)
        with pytest.raises(SimulationError):
            effective_bandwidth_gbps(M, 1, 3, 2.6)
        with pytest.raises(SimulationError):
            effective_bandwidth_gbps(M, 1, 1, 0)


class TestMemorySeconds:
    def test_proportional_to_misses(self):
        t1 = memory_seconds(M, 1e9, 8, 1, 2.6)
        t2 = memory_seconds(M, 2e9, 8, 1, 2.6)
        assert t2 == pytest.approx(2 * t1)

    def test_zero_misses(self):
        assert memory_seconds(M, 0, 8, 1, 2.6) == 0.0

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            memory_seconds(M, -1, 8, 1, 2.6)


class TestDramPower:
    def test_background_dominates(self):
        # Paper: DRAM energy nearly constant.
        idle = dram_power_watts(M.dram, 0.0)
        busy = dram_power_watts(M.dram, 40.0)
        assert idle > 0
        assert busy < 3 * idle

    def test_monotone_in_traffic(self):
        assert dram_power_watts(M.dram, 10) < dram_power_watts(M.dram, 20)

    def test_negative_rejected(self):
        with pytest.raises(SimulationError):
            dram_power_watts(M.dram, -1)
