"""Adversarial access patterns: conflict misses, pathological strides.

The analytic model's RM growth term exists because real machines suffer
beyond pure capacity misses; these tests pin down the set-associative
behaviours the exact simulator must reproduce.
"""

import numpy as np
import pytest

from repro.sim import Cache, CacheSpec
from repro.trace import TraceChunk


class TestConflictMisses:
    def test_same_set_thrash_despite_tiny_footprint(self):
        # 1 KB, 2-way, 64 B lines -> 8 sets.  Three lines 512 B apart all
        # map to set 0; cycling them always misses although only 192 B are
        # live — the classic conflict pathology of power-of-two strides
        # (exactly what a 2^k matrix column walk does).
        c = Cache(CacheSpec("t", 1024, 64, 2))
        addrs = np.tile(np.array([0, 512, 1024], dtype=np.uint64), 20)
        c.access_chunk(TraceChunk.reads(addrs))
        assert c.stats.hits == 0
        assert c.stats.misses == 60

    def test_full_associativity_fixes_it(self):
        c = Cache(CacheSpec("t", 1024, 64, 16))  # fully associative
        addrs = np.tile(np.array([0, 512, 1024], dtype=np.uint64), 20)
        c.access_chunk(TraceChunk.reads(addrs))
        assert c.stats.misses == 3  # compulsory only

    def test_column_walk_of_pow2_matrix_conflicts(self):
        # A column of a 512x512 double matrix strides 4096 B: every line
        # lands in the same set of a small cache; repeated column sweeps
        # get no reuse even though the cache could hold 1/8th of a column.
        spec = CacheSpec("t", 32 * 1024, 64, 8)  # 64 sets
        c = Cache(spec)
        stride = 512 * 8
        col = np.arange(512, dtype=np.uint64) * stride
        for _ in range(3):
            c.access_chunk(TraceChunk.reads(col))
        assert c.stats.hits == 0

    def test_offset_padding_restores_reuse(self):
        # The classic fix: pad the leading dimension so lines spread over
        # sets.  With stride 4096+64 the same sweep hits on passes 2 and 3
        # for the lines that fit.
        spec = CacheSpec("t", 32 * 1024, 64, 8)
        c = Cache(spec)
        stride = 512 * 8 + 64
        col = np.arange(512, dtype=np.uint64) * stride
        for _ in range(3):
            c.access_chunk(TraceChunk.reads(col))
        assert c.stats.hits > 0


class TestWrapAndEdgeAddresses:
    def test_large_addresses(self):
        c = Cache(CacheSpec("t", 1024, 64, 2))
        base = np.uint64(2**48)
        addrs = base + np.arange(16, dtype=np.uint64) * 64
        c.access_chunk(TraceChunk.reads(addrs))
        assert c.stats.misses == 16

    def test_empty_chunk(self):
        c = Cache(CacheSpec("t", 1024, 64, 2))
        lines, w, t = c.access_chunk(
            TraceChunk.reads(np.empty(0, dtype=np.uint64))
        )
        assert len(lines) == 0
        assert c.stats.accesses == 0

    def test_single_set_cache(self):
        c = Cache(CacheSpec("t", 128, 64, 2))  # 1 set, 2 ways
        c.access_chunk(TraceChunk.reads(np.array([0, 64, 128], dtype=np.uint64)))
        assert c.stats.misses == 3
        assert c.stats.evictions == 1
