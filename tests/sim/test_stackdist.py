"""Mattson stack distances, validated against the exact LRU cache."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import SimulationError
from repro.sim import COLD, Cache, CacheSpec, miss_curve, reuse_distances
from repro.trace import TraceChunk, sequential_trace, working_set_loop_trace


class TestReuseDistances:
    def test_sequential_all_cold_per_line(self):
        d = reuse_distances(sequential_trace(64, elem_bytes=64))
        assert np.all(d == COLD)

    def test_same_line_back_to_back(self):
        chunk = TraceChunk.reads(np.array([0, 8, 16], dtype=np.uint64))
        d = reuse_distances(iter([chunk]))
        # One line: cold then distance 0 twice.
        np.testing.assert_array_equal(d, [COLD, 0, 0])

    def test_two_line_alternation(self):
        chunk = TraceChunk.reads(np.array([0, 64, 0, 64], dtype=np.uint64))
        d = reuse_distances(iter([chunk]))
        np.testing.assert_array_equal(d, [COLD, COLD, 1, 1])

    def test_loop_distance_equals_working_set(self):
        # Sweeping W lines repeatedly: every non-cold access has distance
        # W - 1 (all other lines touched in between).
        d = reuse_distances(working_set_loop_trace(16 * 64, passes=3, elem_bytes=64))
        non_cold = d[d != COLD]
        assert np.all(non_cold == 15)

    def test_empty(self):
        assert reuse_distances(iter([])).size == 0


class TestMissCurve:
    def test_thresholding(self):
        d = np.array([COLD, 0, 1, 5, 9])
        curve = miss_curve(d, [1, 2, 6, 10])
        assert curve == {1: 4, 2: 3, 6: 2, 10: 1}

    def test_monotone_in_capacity(self):
        d = reuse_distances(working_set_loop_trace(4096, passes=2))
        curve = miss_curve(d, [8, 16, 32, 64, 128])
        vals = [curve[c] for c in (8, 16, 32, 64, 128)]
        assert vals == sorted(vals, reverse=True)

    def test_rejects_bad_capacity(self):
        with pytest.raises(SimulationError):
            miss_curve(np.array([1]), [0])

    def test_rejects_2d(self):
        with pytest.raises(SimulationError):
            miss_curve(np.zeros((2, 2)), [1])


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    cap=st.sampled_from([2, 4, 8, 16]),
)
def test_matches_fully_associative_cache(seed, cap):
    """Mattson's curve must agree with the simulated fully-assoc LRU."""
    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, 64, size=300, dtype=np.uint64) * 64
    chunk = TraceChunk.reads(addrs)

    d = reuse_distances(iter([TraceChunk.reads(addrs)]))
    mattson = miss_curve(d, [cap])[cap]

    cache = Cache(CacheSpec("fa", cap * 64, 64, cap))  # fully associative
    cache.access_chunk(chunk)
    assert mattson == cache.stats.misses


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=2**31 - 1),
    universe=st.integers(min_value=1, max_value=96),
    n=st.integers(min_value=0, max_value=500),
)
def test_vectorized_matches_fenwick(seed, universe, n):
    """The offline NumPy pass must equal the Fenwick-tree oracle exactly."""
    from repro.sim import reuse_distances_fenwick

    rng = np.random.default_rng(seed)
    addrs = rng.integers(0, universe, size=n, dtype=np.uint64) * 64
    vec = reuse_distances(iter([TraceChunk.reads(addrs)]))
    fen = reuse_distances_fenwick(iter([TraceChunk.reads(addrs)]))
    np.testing.assert_array_equal(vec, fen)


def test_fenwick_multi_chunk_agreement():
    from repro.sim import reuse_distances_fenwick

    rng = np.random.default_rng(3)
    addrs = rng.integers(0, 40, size=600, dtype=np.uint64) * 32
    chunks = [TraceChunk.reads(addrs[i : i + 150]) for i in range(0, 600, 150)]
    vec = reuse_distances(iter(chunks), line_bytes=128)
    fen = reuse_distances_fenwick(
        [TraceChunk.reads(addrs[i : i + 150]) for i in range(0, 600, 150)],
        line_bytes=128,
    )
    np.testing.assert_array_equal(vec, fen)
