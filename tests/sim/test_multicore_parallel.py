"""Differential suite: the parallel pipelined engine vs the serial loop.

Every test compares full :class:`HierarchyResult` state — all counters of
all three levels including per-tag attribution, DRAM lines/writebacks and
the configured line size — plus the post-run cache contents, so "bit
identical" means the parallel engine is indistinguishable from serial
even to code that keeps simulating afterwards.
"""

import numpy as np
import pytest

from repro.errors import SimulationError, WorkerCrashError
from repro.robust import FaultPlan
from repro.sim import (
    backend_available,
    CacheSpec,
    MachineSpec,
    MulticoreTraceSim,
    pack_miss_stream,
    unpack_miss_stream,
)
from repro.trace import MatmulTraceSpec


def machine():
    # 2 sockets x 8 cores so the paper's 1s/2d/8s placements all fit.
    return MachineSpec(
        name="mini16",
        sockets=2,
        cores_per_socket=8,
        l1=CacheSpec("L1", 512, 64, 2),
        l2=CacheSpec("L2", 2048, 64, 4),
        l3=CacheSpec("L3", 16 * 1024, 64, 8),
    )


def stats_key(cs):
    return (
        cs.accesses, cs.write_accesses, cs.hits, cs.misses, cs.read_misses,
        cs.write_misses, cs.evictions, cs.writebacks, cs.prefetches,
        cs.tag_accesses.tolist(), cs.tag_read_misses.tolist(),
        cs.tag_write_misses.tolist(),
    )


def result_key(r):
    return (
        stats_key(r.l1), stats_key(r.l2), stats_key(r.l3),
        r.dram_lines, r.dram_writeback_lines, r.line_bytes,
    )


def cache_contents(sim):
    """Post-run cache state of every level of every socket."""
    out = []
    for s in sim.sockets:
        for core in s.cores:
            for level in (core.l1, core.l2):
                snap = level.state_snapshot()
                snap.pop("stats")
                out.append(snap)
        snap = s.l3.state_snapshot()
        snap.pop("stats")
        out.append(snap)
    return out


def assert_same_contents(a, b):
    assert len(a) == len(b)
    for sa, sb in zip(a, b):
        assert sa["kind"] == sb["kind"]
        if sa["kind"] == "fast":
            np.testing.assert_array_equal(sa["stack"], sb["stack"])
            np.testing.assert_array_equal(sa["dirty"], sb["dirty"])
        else:
            assert sa["sets"] == sb["sets"]
            assert sa["dirty"] == sb["dirty"]


#: Compiled-backend params; hosts without a given backend skip its leg.
COMPILED_BACKEND_PARAMS = [
    pytest.param(
        b,
        marks=pytest.mark.skipif(
            not backend_available(b), reason=f"{b} backend unavailable"
        ),
    )
    for b in ("numba", "c")
]

#: The acceptance matrix: schemes x placements x schedules.
PLACEMENTS = {"1s": (1, 1), "2d": (2, 2), "8s": (8, 1)}
MATRIX = [
    (scheme, tc, schedule)
    for scheme in ("rm", "mo", "ho")
    for tc in ("1s", "2d", "8s")
    for schedule in ("static", "cyclic")
]


class TestBitIdentity:
    @pytest.mark.parametrize("scheme,tc,schedule", MATRIX)
    def test_matrix_fast_engine(self, scheme, tc, schedule):
        threads, sockets = PLACEMENTS[tc]
        n = 16
        spec = MatmulTraceSpec.uniform(n, scheme)
        m = machine()
        serial = MulticoreTraceSim(
            m, spec, threads, sockets, schedule=schedule, engine="fast"
        )
        rs = serial.run()
        for k in (1, 2, 4):
            par = MulticoreTraceSim(
                m, spec, threads, sockets, schedule=schedule, engine="fast",
                workers=k,
            )
            rp = par.run()
            assert result_key(rp) == result_key(rs), (scheme, tc, schedule, k)
            assert_same_contents(cache_contents(par), cache_contents(serial))

    @pytest.mark.parametrize("scheme,tc", [("rm", "2d"), ("ho", "8s")])
    def test_exact_engine_spot_checks(self, scheme, tc):
        threads, sockets = PLACEMENTS[tc]
        spec = MatmulTraceSpec.uniform(16, scheme)
        m = machine()
        rs = MulticoreTraceSim(m, spec, threads, sockets, engine="exact").run()
        par = MulticoreTraceSim(
            m, spec, threads, sockets, engine="exact", workers=2
        )
        assert result_key(par.run()) == result_key(rs)

    def test_sampled_rows_and_carried_state(self):
        # The calibration pattern: two runs on one sim object, the second
        # carrying the first's cache state into the workers and back.
        spec = MatmulTraceSpec.uniform(16, "mo")
        m = machine()
        serial = MulticoreTraceSim(m, spec, 2, 1, engine="fast")
        par = MulticoreTraceSim(m, spec, 2, 1, engine="fast", workers=2)
        for sim in (serial, par):
            sim.run(rows=[7])
            sim.run(rows=[8, 9, 10])
        assert result_key(par.result()) == result_key(serial.result())
        assert_same_contents(cache_contents(par), cache_contents(serial))

    def test_more_threads_than_rows_empty_generators(self):
        # Threads beyond the row count get empty shards: their workers
        # must still deliver a DONE snapshot so the merge stays aligned.
        spec = MatmulTraceSpec.uniform(16, "ho")
        m = machine()
        rs = MulticoreTraceSim(m, spec, 8, 1, engine="fast").run(rows=[5, 6])
        rp = MulticoreTraceSim(m, spec, 8, 1, engine="fast", workers=3).run(
            rows=[5, 6]
        )
        assert result_key(rp) == result_key(rs)

    def test_empty_miss_stream_chunks(self):
        # An L2 big enough to absorb the whole working set produces empty
        # per-chunk miss streams; the shared phase must replay nothing and
        # the L3 must end cold, exactly as in serial.
        m = MachineSpec(
            name="fat-l2",
            sockets=1,
            cores_per_socket=2,
            l1=CacheSpec("L1", 512, 64, 2),
            l2=CacheSpec("L2", 64 * 1024, 64, 8),
            l3=CacheSpec("L3", 128 * 1024, 64, 8),
        )
        spec = MatmulTraceSpec.uniform(8, "mo")
        serial = MulticoreTraceSim(m, spec, 2, 1, engine="fast")
        par = MulticoreTraceSim(m, spec, 2, 1, engine="fast", workers=2)
        rs, rp = serial.run(), par.run()
        assert rs.l3.accesses == rp.l3.accesses
        assert result_key(rp) == result_key(rs)
        # Second pass is all L1/L2 hits -> every miss chunk is empty.
        rs2, rp2 = serial.run(), par.run()
        assert rs2.l3.accesses == rs.l3.accesses
        assert result_key(rp2) == result_key(rs2)


class TestBackendBitIdentity:
    """Compiled kernel backends through the full parallel stack.

    Serial numpy is the anchor; a compiled backend must match it both
    serially and through workers=2 — the latter also proves the backend
    name survives pickling into spawn workers (each worker re-resolves
    the plain string and loads its own copy of the kernel).
    """

    @pytest.mark.parametrize("scheme,tc", [("mo", "2d"), ("ho", "8s")])
    @pytest.mark.parametrize("backend", COMPILED_BACKEND_PARAMS)
    def test_compiled_backend_matches_numpy(self, backend, scheme, tc):
        threads, sockets = PLACEMENTS[tc]
        spec = MatmulTraceSpec.uniform(16, scheme)
        m = machine()
        anchor = MulticoreTraceSim(
            m, spec, threads, sockets, engine="fast", backend="numpy"
        ).run()
        serial = MulticoreTraceSim(
            m, spec, threads, sockets, engine="fast", backend=backend
        )
        rs = serial.run()
        assert result_key(rs) == result_key(anchor), (scheme, tc)
        par = MulticoreTraceSim(
            m, spec, threads, sockets, engine="fast", backend=backend,
            workers=2,
        )
        rp = par.run()
        assert result_key(rp) == result_key(anchor), (scheme, tc)
        assert_same_contents(cache_contents(par), cache_contents(serial))


class TestSmoke:
    def test_workers2_bit_identity_smoke(self):
        """CI smoke: one spawn-pickled workers=2 run against serial."""
        spec = MatmulTraceSpec.uniform(16, "mo")
        m = machine()
        rs = MulticoreTraceSim(m, spec, 4, 2, engine="fast").run()
        rp = MulticoreTraceSim(m, spec, 4, 2, engine="fast", workers=2).run()
        assert result_key(rp) == result_key(rs)


class TestFailureModes:
    def test_invalid_workers(self):
        with pytest.raises(SimulationError):
            MulticoreTraceSim(machine(), MatmulTraceSpec.uniform(8, "rm"),
                              workers=0)

    @pytest.mark.parametrize("kind", ["crash", "transient"])
    def test_worker_crash_raises_not_hangs(self, kind):
        sim = MulticoreTraceSim(
            machine(), MatmulTraceSpec.uniform(8, "rm"), 2, 1,
            engine="fast", workers=2,
            fault_plan=FaultPlan.single(kind, worker=0, step=0),
        )
        with pytest.raises(WorkerCrashError, match="worker"):
            sim.run()


class TestMissStreamSerialization:
    def test_round_trip(self):
        lines = np.array([3, 5, 2**40], dtype=np.uint64)
        w = np.array([True, False, True])
        tags = np.array([0, 1, 2], dtype=np.uint8)
        got = unpack_miss_stream(pack_miss_stream(lines, w, tags))
        for a, b in zip(got, (lines, w, tags)):
            np.testing.assert_array_equal(a, b)
            assert a.dtype == b.dtype

    def test_empty_round_trip(self):
        empty = (
            np.empty(0, dtype=np.uint64),
            np.empty(0, dtype=bool),
            np.empty(0, dtype=np.uint8),
        )
        got = unpack_miss_stream(pack_miss_stream(*empty))
        for a, b in zip(got, empty):
            assert len(a) == 0 and a.dtype == b.dtype
