"""Analytic model: miss curves, paper-shape predictions, calibration."""

import pytest

from repro.errors import SimulationError
from repro.sim import (
    DEFAULT_MISS_MODELS,
    MissModelParams,
    PerformanceModel,
    calibrate_miss_model,
    misses_per_iteration,
)

SIZES = {10: 1024, 11: 2048, 12: 4096}


@pytest.fixture(scope="module")
def model():
    return PerformanceModel()


class TestMissCurves:
    def test_in_cache_tiny(self):
        for scheme in ("rm", "mo", "ho"):
            assert misses_per_iteration(scheme, 0.3) < 0.01

    def test_streaming_plateaus(self):
        # RM misses roughly every iteration; MO/HO an order less.
        assert misses_per_iteration("rm", 8.0) == pytest.approx(1.02, rel=0.1)
        assert misses_per_iteration("mo", 8.0) < 0.2
        assert misses_per_iteration("ho", 8.0) < 0.2

    def test_monotone_in_u(self):
        for scheme in ("rm", "mo", "ho"):
            vals = [misses_per_iteration(scheme, u) for u in (0.5, 1, 2, 4, 8, 16)]
            assert vals == sorted(vals)

    def test_paper_cachegrind_magnitude(self):
        # Section IV-A: ~0.2 LL misses per iteration for MO at size 12
        # (17.06e6 misses over 5 rows x 4096^2 iterations).
        u_size12 = 3 * 8 * 4096**2 / (20 * 1024 * 1024)
        assert misses_per_iteration("mo", u_size12) == pytest.approx(0.2, rel=0.3)

    def test_unknown_scheme(self):
        with pytest.raises(SimulationError):
            misses_per_iteration("zz", 1.0)

    def test_invalid_u(self):
        with pytest.raises(SimulationError):
            misses_per_iteration("rm", 0.0)


class TestTable4Shape(object):
    """The headline shape targets from DESIGN.md."""

    def test_in_cache_rm_wins(self, model):
        n = SIZES[10]
        for threads, sockets in ((1, 1), (8, 1), (16, 2)):
            rm = model.predict("rm", n, 2.6, threads, sockets).seconds
            mo = model.predict("mo", n, 2.6, threads, sockets).seconds
            ho = model.predict("ho", n, 2.6, threads, sockets).seconds
            assert rm < mo < ho

    def test_out_of_cache_mo_overtakes_rm(self, model):
        # Table IV: at sizes 11/12 with high thread counts, MO beats RM.
        for size in (11, 12):
            n = SIZES[size]
            rm = model.predict("rm", n, 2.6, 16, 2).seconds
            mo = model.predict("mo", n, 2.6, 16, 2).seconds
            assert mo < rm

    def test_ho_order_of_magnitude_slower_single_thread(self, model):
        n = SIZES[12]
        ho = model.predict("ho", n, 2.6, 1, 1).seconds
        mo = model.predict("mo", n, 2.6, 1, 1).seconds
        assert 5 < ho / mo < 12

    def test_memory_bound_frequency_collapse(self, model):
        # Fig 5 shape: for size 12 RM, 2.17x more clock buys < 1.35x speed;
        # in-cache size 10 scales nearly proportionally.
        t12 = {f: model.predict("rm", SIZES[12], f, 8, 1).seconds for f in (1.2, 2.6)}
        t10 = {f: model.predict("rm", SIZES[10], f, 8, 1).seconds for f in (1.2, 2.6)}
        assert t12[1.2] / t12[2.6] < 1.35
        assert t10[1.2] / t10[2.6] > 1.9

    def test_dual_socket_slower_same_thread_count_memory_bound(self, model):
        # Table IV: 8d slower than 8s for memory-bound RM.
        s8 = model.predict("rm", SIZES[12], 2.6, 8, 1).seconds
        d8 = model.predict("rm", SIZES[12], 2.6, 8, 2).seconds
        assert d8 > s8

    def test_ondemand_fastest(self, model):
        for scheme in ("rm", "mo"):
            od = model.predict(scheme, SIZES[11], "ondemand", 8, 1).seconds
            fixed = model.predict(scheme, SIZES[11], 2.6, 8, 1).seconds
            assert od <= fixed

    def test_absolute_times_within_40_percent_of_paper(self, model):
        paper = {
            ("rm", 10, 1, 1): 3.3,
            ("rm", 11, 1, 1): 91.9,
            ("rm", 12, 8, 1): 153.0,
            ("mo", 10, 1, 1): 6.2,
            ("mo", 12, 1, 1): 514.6,
            ("ho", 11, 1, 1): 409.9,
            ("ho", 12, 16, 2): 219.8,
        }
        for (scheme, size, p, soc), t_paper in paper.items():
            t = model.predict(scheme, SIZES[size], 2.6, p, soc).seconds
            assert t == pytest.approx(t_paper, rel=0.4), (scheme, size, p, soc)


class TestEnergyShape:
    def test_energy_proportional_to_time_in_cache(self, model):
        # Fig 6 a/d: for the in-cache size, faster is also less energy.
        preds = {
            f: model.predict("rm", SIZES[10], f, 8, 1) for f in (1.2, 1.8, 2.6)
        }
        times = [preds[f].seconds for f in (1.2, 1.8, 2.6)]
        energies = [preds[f].energy.package_j for f in (1.2, 1.8, 2.6)]
        assert times == sorted(times, reverse=True)
        assert energies == sorted(energies, reverse=True)

    def test_memory_bound_energy_knee(self, model):
        # Fig 6 c/f: above the memory clock, RM trades disproportionate
        # energy for little time.
        p18 = model.predict("rm", SIZES[12], 1.8, 8, 1)
        p26 = model.predict("rm", SIZES[12], 2.6, 8, 1)
        time_gain = p18.seconds / p26.seconds
        energy_cost = p26.energy.package_j / p18.energy.package_j
        assert time_gain < 1.1
        assert energy_cost > time_gain

    def test_mo_keeps_improving_with_frequency(self, model):
        # Fig 6: "the MO curve does not equally saturate the memory system,
        # and continues to attain improvements with rising frequency."
        p18 = model.predict("mo", SIZES[12], 1.8, 8, 1)
        p26 = model.predict("mo", SIZES[12], 2.6, 8, 1)
        assert p18.seconds / p26.seconds > 1.25

    def test_dram_energy_small(self, model):
        p = model.predict("rm", SIZES[12], 2.6, 8, 1)
        assert p.energy.dram_j < p.energy.pp0_j

    def test_ondemand_worse_energy_out_of_cache(self, model):
        od = model.predict("rm", SIZES[12], "ondemand", 8, 1)
        fixed = model.predict("rm", SIZES[12], 2.6, 8, 1)
        assert od.seconds <= fixed.seconds
        assert od.energy.package_j > fixed.energy.package_j


class TestPredictionRecord:
    def test_fields_consistent(self, model):
        p = model.predict("mo", 2048, 1.8, 4, 1)
        assert p.seconds >= max(p.compute_seconds, p.memory_seconds)
        assert 0 <= p.compute_fraction <= 1
        assert p.llc_misses > 0
        assert p.freq_ghz == 1.8
        assert p.capacity_ratio == pytest.approx(3 * 8 * 2048**2 / (20 * 2**20))

    def test_validation(self, model):
        with pytest.raises(SimulationError):
            model.predict("rm", 1024, 2.6, 0, 1)
        with pytest.raises(SimulationError):
            model.predict("rm", 1024, 2.6, 1, 5)
        with pytest.raises(SimulationError):
            model.predict("rm", 1024, 2.6, 16, 1)  # 16 threads, one socket


class TestCalibration:
    @pytest.mark.slow
    def test_refit_matches_trace_sim(self):
        # Re-fit MO against the exact simulator at small sizes and check
        # the fitted curve reproduces the defaults' character: low floor,
        # plateau an order below RM's, transition near u ~ 3.5.
        params = calibrate_miss_model("mo", l3_bytes=32 * 1024, n_values=(16, 32, 64, 128))
        assert params.floor < 0.02
        assert 0.05 < params.plateau < 0.35
        assert 1.5 < params.center < 8.0

    def test_params_validation(self):
        p = MissModelParams(floor=0.0, plateau=1.0, center=3.0, width=0.1)
        with pytest.raises(SimulationError):
            p.mpi(0)

    def test_default_models_cover_paper_schemes(self):
        assert set(DEFAULT_MISS_MODELS) == {"rm", "mo", "ho"}

    def test_defaults_are_not_degenerate(self):
        assert all(not p.degenerate_fit for p in DEFAULT_MISS_MODELS.values())

    def test_calibration_is_warning_free(self):
        # curve_fit used to leak OptimizeWarning (singular covariance)
        # into every calibration run; it is now captured and recorded as
        # a flag on the result instead.
        import warnings

        pytest.importorskip("scipy")
        with warnings.catch_warnings():
            warnings.simplefilter("error")
            params = calibrate_miss_model(
                "mo", l3_bytes=32 * 1024, n_values=(16, 32)
            )
        assert isinstance(params.degenerate_fit, bool)

    def test_degenerate_fit_counted_in_metrics(self, tmp_path):
        from repro import obs

        pytest.importorskip("scipy")
        with obs.ObsSession(metrics=tmp_path / "m.json"):
            params = calibrate_miss_model(
                "mo", l3_bytes=32 * 1024, n_values=(16, 32)
            )
            counted = obs.OBS.metrics.counter_value(
                "calibrate.degenerate_fits", scheme="mo"
            )
        # Two sample points cannot constrain a three-parameter sigmoid:
        # the covariance is singular, so the flag and counter must fire.
        assert params.degenerate_fit
        assert counted == 1
