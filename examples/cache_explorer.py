#!/usr/bin/env python3
"""Exact cache simulation of the three orderings at scaled sizes.

Drives the naive kernel's reference stream through the set-associative
LRU hierarchy on a miniature Sandy Bridge (caches shrunk, capacity ratios
preserved), showing the in-cache -> memory-bound transition per scheme,
and reproduces the paper's Section IV-A cachegrind study (5 middle rows,
LL read misses, HO vs MO).

Run:  python examples/cache_explorer.py
"""

from repro.experiments import run_cachegrind_study
from repro.sim import CacheSpec, MachineSpec, MulticoreTraceSim
from repro.trace import MatmulTraceSpec


def sweep_capacity_ratio() -> None:
    l3 = 64 * 1024
    machine = MachineSpec(
        name="mini",
        sockets=1,
        cores_per_socket=1,
        l1=CacheSpec("L1", 512, 64, 1),
        l2=CacheSpec("L2", 2048, 64, 8),
        l3=CacheSpec("L3", l3, 64, 16),
    )
    print(f"LLC misses per inner-loop iteration (mini machine, {l3 // 1024} KB L3)")
    print(f"{'n':>5s} {'u':>7s} {'RM':>9s} {'MO':>9s} {'HO':>9s}")
    for n in (32, 64, 128):
        u = 3 * 8 * n * n / l3
        row = [f"{n:5d}", f"{u:7.2f}"]
        for scheme in ("rm", "mo", "ho"):
            sim = MulticoreTraceSim(
                machine, MatmulTraceSpec.uniform(n, scheme), threads=1
            )
            mid = n // 2
            sim.run(rows=[mid - 1])  # warm-up
            before = sim.result().l3.misses
            sim.run(rows=[mid, mid + 1])
            mpi = (sim.result().l3.misses - before) / (2 * n * n)
            row.append(f"{mpi:9.4f}")
        print(" ".join(row))
    print("Below u~3 everything fits (no scheme matters); above it RM pays")
    print("~1 miss per iteration while the curves pay ~an eighth — the")
    print("locality the paper trades computation for.\n")


def multicore_demo() -> None:
    machine = MachineSpec(
        name="mini-2x2",
        sockets=2,
        cores_per_socket=2,
        l1=CacheSpec("L1", 512, 64, 1),
        l2=CacheSpec("L2", 2048, 64, 8),
        l3=CacheSpec("L3", 32 * 1024, 64, 16),
    )
    print("Thread placement at the shared L3 (n=96 rows over threads):")
    spec = MatmulTraceSpec.uniform(64, "mo")
    for threads, sockets, label in ((1, 1, "1s"), (2, 1, "2s"), (2, 2, "2d")):
        sim = MulticoreTraceSim(machine, spec, threads=threads, sockets_used=sockets)
        r = sim.run(rows=range(16))
        print(f"  {label}: L1 misses {r.l1.misses:7,d}  "
              f"LL misses {r.l3.misses:7,d}  DRAM lines {r.dram_lines:7,d}")
    print()


def cachegrind_study() -> None:
    print("Section IV-A study (scaled to the paper's capacity ratio u~19.7):")
    study = run_cachegrind_study(schemes=("rm", "mo", "ho"))
    print(study.summary())
    print()
    print("Per-matrix attribution (cg_annotate style), Morton order:")
    print(study.reports["mo"].annotate())


def main() -> None:
    sweep_capacity_ratio()
    multicore_demo()
    cachegrind_study()


if __name__ == "__main__":
    main()
