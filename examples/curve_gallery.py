#!/usr/bin/env python3
"""Curve gallery: the paper's Figures 1 and 2, plus locality metrics.

Renders the Morton and Hilbert traversals of a 4x4 matrix (Fig. 1), the
inductive construction steps (Fig. 2), the Peano extension, and a table of
quantitative locality metrics showing the "inherent tiling effect".

Run:  python examples/curve_gallery.py
"""

from repro import HilbertCurve, MortonCurve, PeanoCurve, RowMajorCurve
from repro.curves import (
    average_jump,
    hilbert_sequence,
    morton_sequence,
    peano_sequence,
    render_traversal_grid,
    render_traversal_path,
    tile_span,
    window_working_set,
)


def side_by_side(left: str, right: str, gap: int = 6) -> str:
    ll = left.splitlines()
    rl = right.splitlines()
    width = max(len(l) for l in ll)
    out = []
    for i in range(max(len(ll), len(rl))):
        a = ll[i] if i < len(ll) else ""
        b = rl[i] if i < len(rl) else ""
        out.append(a.ljust(width + gap) + b)
    return "\n".join(out)


def main() -> None:
    print("=== Fig. 1: traversal of 4x4 matrices in Morton and Hilbert order ===")
    mo4, ho4 = morton_sequence(2), hilbert_sequence(2)
    print(side_by_side("Morton:\n" + render_traversal_grid(mo4),
                       "Hilbert:\n" + render_traversal_grid(ho4)))
    print()
    print(side_by_side(render_traversal_path(mo4), render_traversal_path(ho4)))
    print("\nNote the Morton order's jumps between quadrants — the gaps in the")
    print("left path — which the Hilbert rotation eliminates (Section II-B).\n")

    print("=== Fig. 2: inductive construction (orders 1 -> 3) ===")
    for order in (1, 2, 3):
        print(f"\nHilbert order {order} ({2**order}x{2**order}):")
        print(render_traversal_path(hilbert_sequence(order)))

    print("\n=== Peano extension (order 2, 9x9) ===")
    print(render_traversal_path(peano_sequence(2)))

    print("\n=== Locality metrics, 64x64 grid ===")
    curves = {
        "RM": RowMajorCurve(64),
        "MO": MortonCurve(64),
        "HO": HilbertCurve(64),
    }
    print(f"{'curve':>6s} {'row-walk jump':>14s} {'col-walk jump':>14s} "
          f"{'col window WS':>14s} {'8x8 tile span':>14s}")
    for name, curve in curves.items():
        ws = window_working_set(curve, axis=0, window=64, line_elems=8).mean()
        span = tile_span(curve, 8).max()
        print(f"{name:>6s} {average_jump(curve, 1):14.1f} "
              f"{average_jump(curve, 0):14.1f} {ws:14.1f} {span:14d}")
    print("\nMorton/Hilbert aligned tiles are exactly contiguous (span 64 =")
    print("8*8): multi-level tiling for free, no architecture parameters.")


if __name__ == "__main__":
    main()
