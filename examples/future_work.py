#!/usr/bin/env python3
"""The paper's future work, implemented: cheaper index arithmetic.

Section VI suggests dedicated hardware for the Hilbert index operations.
This example quantifies that proposal with the calibrated model, and also
demonstrates the pure-software improvement the same analysis uncovers for
Morton order: Wise's incremental dilated arithmetic, which replaces a full
re-dilation per element with a 4-op neighbour step (implemented as a real
kernel in :mod:`repro.kernels.incremental`).

Run:  python examples/future_work.py
"""

import time

import numpy as np

from repro.curves.dilated import DilatedPoint
from repro.experiments import ExperimentRunner, run_hardware_assist_study
from repro.kernels import (
    morton_matmul_incremental,
    naive_matmul,
    random_pair,
    reference_matmul,
    transpose,
)
from repro.layout import CurveMatrix


def main() -> None:
    runner = ExperimentRunner()

    print("=== Dedicated index hardware (paper Section VI), modelled ===")
    for size, tc in ((10, "1s"), (12, "1s"), (12, "16d")):
        print()
        print(run_hardware_assist_study(size_exp=size, thread_config=tc,
                                        runner=runner).summary())

    print("\n=== Incremental dilated arithmetic, executed ===")
    p = DilatedPoint(3, 5)
    print(f"DilatedPoint(3, 5): index {p.index}; "
          f"step_x -> {p.step_x()!r}, step_y -> {p.step_y()!r}")

    a, b = random_pair(64, "mo", seed=42)
    t0 = time.perf_counter()
    c_inc = morton_matmul_incremental(a, b)
    t_inc = time.perf_counter() - t0
    t0 = time.perf_counter()
    c_ref = naive_matmul(a, b)
    t_ref = time.perf_counter() - t0
    np.testing.assert_allclose(c_inc.to_dense(), reference_matmul(a, b), rtol=1e-10)
    print(f"incremental kernel {t_inc * 1e3:.1f} ms vs encode-table kernel "
          f"{t_ref * 1e3:.1f} ms (identical results)")

    print("\n=== Transposition: Morton's 4-op bit swap ===")
    dense = np.arange(16.0).reshape(4, 4)
    m = CurveMatrix.from_dense(dense, "mo")
    t = transpose(m)
    print("A:")
    print(dense)
    print("transpose(A) via Morton bit swap:")
    print(t.to_dense())


if __name__ == "__main__":
    main()
