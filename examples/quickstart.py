#!/usr/bin/env python3
"""Quickstart: curve-ordered matrices and multiplication.

Covers the core public API in a minute:
  * encode/decode with Morton and Hilbert curves (paper Fig. 3),
  * storing a matrix along a curve and multiplying cache-obliviously,
  * converting between layouts,
  * the index-cost asymmetry that drives the whole paper.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro import (
    CurveMatrix,
    HilbertCurve,
    MortonCurve,
    naive_matmul,
    recursive_matmul,
    reference_matmul,
    relayout,
)
from repro.curves import index_cost


def main() -> None:
    rng = np.random.default_rng(42)

    # --- 1. Curves are bijections between grid coordinates and positions.
    mo = MortonCurve(8)
    ho = HilbertCurve(8)
    print("Paper Fig. 3: Morton index of (y=3, x=5) =", mo.encode(3, 5), "(0b011011)")
    print("Hilbert index of the same element      =", ho.encode(3, 5))

    # --- 2. Store a matrix along a curve; element access is transparent.
    dense = rng.random((256, 256))
    a = CurveMatrix.from_dense(dense, "mo")
    print("\nA[17, 99] ==", a[17, 99], "== dense:", dense[17, 99])

    # --- 3. Multiply.  recursive_matmul exploits the layout: every aligned
    # power-of-two block of a Morton matrix is contiguous in memory.
    b = CurveMatrix.random(256, "mo", rng=rng)
    c = recursive_matmul(a, b, leaf=64)
    np.testing.assert_allclose(c.to_dense(), reference_matmul(a, b), rtol=1e-10)
    print("recursive_matmul matches the dense reference.")

    # --- 4. The naive kernel works across *any* pair of layouts.
    small_a = CurveMatrix.random(32, "ho", rng=rng)
    small_b = CurveMatrix.random(32, "rm", rng=rng)
    c2 = naive_matmul(small_a, small_b, out_curve="mo")
    np.testing.assert_allclose(
        c2.to_dense(), reference_matmul(small_a, small_b), rtol=1e-10
    )
    print("naive_matmul(HO x RM -> MO) matches too.")

    # --- 5. Re-layout is a single cached gather.
    back = relayout(c, "ho")
    assert np.array_equal(back.to_dense(), c.to_dense())
    print("relayout(MO -> HO) preserves contents.")

    # --- 6. The paper's trade-off in one table: ops per index computation.
    print("\nIndex-computation cost (scalar ops), 4096x4096 matrices:")
    for scheme in ("rm", "mo", "ho"):
        cost = index_cost(scheme, bits=12)
        print(f"  {scheme.upper()}: {cost.total:3d} ops "
              f"(mul {cost.muls}, alu {cost.alu}, branch {cost.branches})")
    print("Constant for RM/MO, linear in address bits for HO — Section II.")


if __name__ == "__main__":
    main()
