#!/usr/bin/env python3
"""The paper's headline evaluation, end to end.

Sweeps the 216-point grid of Table III through the calibrated performance
model, prints Table IV, the Figure 4/5/6 series, demonstrates the RAPL
measurement pipeline (15.3 uJ counters sampled at 10 Hz, trapezoidal
integration), and runs the shape-validation claims.

Run:  python examples/energy_study.py
"""

from repro.experiments import (
    ExperimentRunner,
    SampleConfig,
    fig4_speedup,
    fig6_energy_time,
    render_series,
    render_table4,
    validate_all,
)
from repro.perf import power_from_samples, sample_rapl_counter
from repro.sim import PowerMeter


def main() -> None:
    runner = ExperimentRunner()

    print(render_table4(runner))

    print("=== Fig. 4: parallel speedup (dual socket, ondemand) ===")
    for size, series in fig4_speedup(runner).items():
        print(render_series(series, f"Size {size}", "threads", "speedup"))
    print()

    print("=== Fig. 6 c): single socket, size 12 — energy vs time ===")
    series = fig6_energy_time(runner)[("8s", 12)]
    print(render_series(series, "8 threads, 1 socket, 4096x4096",
                        "Energy [J]", "Time [s]"))
    print()

    # --- The measurement chain the paper used, reproduced faithfully:
    # model a run's power, expose it as a quantized wrapping RAPL counter,
    # sample at 10 Hz, derive power, integrate with the trapezoidal rule.
    pred = runner.model.predict("mo", 4096, 2.6, 8, 1)
    ts, raw = sample_rapl_counter(
        lambda t: pred.power.package_w, duration_s=min(pred.seconds, 30.0)
    )
    log = power_from_samples(ts, raw)
    print("=== RAPL pipeline check (MO, size 12, 8s, 2.6 GHz) ===")
    print(f"modelled package power : {pred.power.package_w:8.1f} W")
    print(f"10 Hz sampled estimate : {log.power_w.mean():8.1f} W")
    print(f"trapezoid energy (30 s window): {log.energy_j:10.1f} J")

    # The paper's 38% figure is "when all cores are utilized": 16d.
    full = runner.model.predict("mo", 4096, 2.6, 16, 2)
    wall = PowerMeter().read(full.power)
    print(f"wall power at full load (WT210 model): {wall.wall_w:7.1f} W; "
          f"CPU+DRAM share {wall.component_fraction:.0%} (paper: ~38%)")
    print()

    print("=== Shape validation against the paper's findings ===")
    for claim in validate_all(runner):
        status = "PASS" if claim.holds else "FAIL"
        print(f"[{status}] {claim.name}")
        print(f"        {claim.detail}")


if __name__ == "__main__":
    main()
