#!/usr/bin/env python3
"""Why row-major really loses at 2^n sizes: conflict misses.

The paper benchmarks square matrices of side 2^10..2^12 — exactly the
sizes where row-major's column walk strides by a power of two and cycles
through a handful of cache sets.  This walk-through decomposes each
ordering's misses into capacity misses (what a fully-associative cache of
the same size would take; Mattson's one-pass stack analysis) and conflict
misses (the rest, from the exact set-associative simulator), then shows
the classic practitioner's fix — padding the leading dimension — and why
curve layouts never need it.

Run:  python examples/conflict_misses.py
"""

import numpy as np

from repro.experiments import render_mrc, run_mrc_study
from repro.sim import Cache, CacheSpec
from repro.trace import TraceChunk


def decomposition() -> None:
    print("=== Capacity vs conflict misses per ordering ===")
    curves = run_mrc_study()
    print(render_mrc(curves))
    rm = curves[0]
    print(f"\nAt u=4, {rm.conflict_share(4.0):.0%} of RM's misses are conflict")
    print("misses; a fully-associative cache would barely miss at all. The")
    print("curve layouts emit no long constant stride, so they are immune.\n")


def padding_fix() -> None:
    print("=== The classic fix: pad the leading dimension ===")
    spec = CacheSpec("demo", 32 * 1024, 64, 8)
    n = 512
    for label, stride in (("8n (power of two)", n * 8), ("8n + 64 (padded)", n * 8 + 64)):
        cache = Cache(spec)
        col = np.arange(n, dtype=np.uint64) * stride
        for _ in range(3):
            cache.access_chunk(TraceChunk.reads(col))
        print(f"  column sweeps x3, stride {label:20s}: "
              f"{cache.stats.hits:5d} hits / {cache.stats.accesses} accesses")
    print("\nPadding scatters the column across sets and restores reuse —")
    print("one more architecture-specific tweak that Morton/Hilbert storage")
    print("makes unnecessary (their aligned blocks spread over sets by")
    print("construction).")


def main() -> None:
    decomposition()
    padding_fix()


if __name__ == "__main__":
    main()
