#!/usr/bin/env python3
"""Beyond matmul: sparse matrices and stencils over curve layouts.

Two workloads from the paper's motivating context (related work extends
the curve approach to sparse multiplication; stencils are the canonical
neighbour-access pattern):

  * a curve-sorted sparse matrix whose aligned blocks are contiguous entry
    slices (two binary searches per block), driving SpMV, and
  * a five-point Jacobi stencil whose neighbour gathers ride the same
    index machinery.

Run:  python examples/sparse_and_stencil.py
"""

import numpy as np

from repro.kernels import jacobi_step
from repro.layout import CurveMatrix, CurveSparseMatrix


def sparse_demo() -> None:
    print("=== Curve-sorted sparse matrices ===")
    rng = np.random.default_rng(0)
    n = 64
    dense = rng.random((n, n))
    dense[rng.random((n, n)) > 0.05] = 0.0  # ~5% density

    sp = CurveSparseMatrix.from_dense(dense, "mo")
    print(f"{sp!r}: density {sp.density:.1%}")

    # Aligned blocks are contiguous slices of the entry arrays.
    sl = sp.block_slice(32, 0, 32)
    print(f"block (32,0)x32 holds entries [{sl.start}:{sl.stop}] "
          f"({sl.stop - sl.start} nnz, = dense count "
          f"{np.count_nonzero(dense[32:, :32])})")

    x = rng.random(n)
    np.testing.assert_allclose(sp.matvec(x), dense @ x, rtol=1e-12)
    b = rng.random((n, n))
    np.testing.assert_allclose(sp.matmul_dense(b), dense @ b, rtol=1e-12)
    print("SpMV and SpMM match the dense reference.\n")


def stencil_demo() -> None:
    print("=== Five-point Jacobi over Morton storage ===")
    n = 64
    field = np.zeros((n, n))
    field[n // 2, n // 2] = 1.0  # point source
    m = CurveMatrix.from_dense(field, "mo")
    for step in (1, 10, 100):
        mm = m
        for _ in range(step):
            mm = jacobi_step(mm, center_weight=0.0, neighbor_weight=0.25,
                             boundary="periodic")
        f = mm.to_dense()
        print(f"after {step:3d} steps: peak {f.max():.4f}, "
              f"mass {f.sum():.4f} (conserved)")
    print("Neighbour gathers run through cached Morton index tables —")
    print("each offset is a dilated increment of the centre index.")


def main() -> None:
    sparse_demo()
    stencil_demo()


if __name__ == "__main__":
    main()
